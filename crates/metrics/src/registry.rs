//! A deterministic in-process metrics registry.
//!
//! [`Registry`] holds three metric families — monotonic counters, gauges
//! and fixed-bucket histograms — addressed by `(name, label set)` pairs.
//! Label sets are interned to dense [`LabelSetId`]s exactly like
//! `workload::GroupId` interns group names, so the hot path increments by
//! index and never hashes a string. Snapshots are canonical: metrics are
//! emitted sorted by name then label set through the [`crate::emit`] JSON
//! emitter, so two identical runs produce byte-identical snapshot files
//! (the registry equivalent of the golden trace digests).
//!
//! [`RegistryObserver`] is the bridge from the typed event stream: attach
//! one to an engine (and scheduler) and it folds every [`SimEvent`] into
//! event counters, per-machine task counters, queue-depth and task-duration
//! histograms, and the fleet energy gauge — including the per-decision
//! counters when [`hadoop_sim::EngineConfig::trace_decisions`] is on.
//!
//! # Sampling mode
//!
//! [`RegistryObserver::with_sampling`] additionally turns the registry into
//! a telemetry *time-series* source: every `control_interval_fired` event
//! (and the final `run_finished`) takes one sample of the whole registry —
//! the windowed **delta** of every counter, the instantaneous value of
//! every gauge, and bucket-estimated p50/p95/p99 points of every histogram
//! — into a bounded per-series [`TimeSeries`] store keyed by
//! `name{label=value,...}`. Counter deltas re-sum to the end-of-run
//! snapshot exactly (a property the test suite pins), so the series file is
//! a faithful windowed decomposition of the snapshot, not an approximation.
//! [`SeriesSnapshot`] is the canonical JSON codec for the store.
//!
//! # Examples
//!
//! ```
//! use metrics::registry::Registry;
//!
//! let mut reg = Registry::new();
//! let labels = reg.label_set(&[("kind", "map")]);
//! let started = reg.counter("tasks_started_total", labels);
//! reg.inc(started, 3);
//! let snap = reg.snapshot();
//! assert!(snap.render().contains("tasks_started_total"));
//! ```

use std::collections::BTreeMap;

use cluster::{MachineId, SlotKind};
use hadoop_sim::trace::Observer;
use hadoop_sim::SimEvent;
use simcore::series::TimeSeries;
use simcore::SimTime;
use workload::TaskId;

use crate::emit::{object, JsonValue, ToJson};

/// Dense id of an interned label set (see [`Registry::label_set`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelSetId(u32);

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

#[derive(Debug)]
struct Counter {
    name: &'static str,
    labels: LabelSetId,
    value: u64,
}

#[derive(Debug)]
struct Gauge {
    name: &'static str,
    labels: LabelSetId,
    value: f64,
}

#[derive(Debug)]
struct Histogram {
    name: &'static str,
    labels: LabelSetId,
    /// Inclusive upper bounds, ascending. One overflow bucket past the end.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cumulative-free per-bucket counts.
    buckets: Vec<u64>,
    sum: f64,
    count: u64,
}

/// Deterministic counters, gauges and fixed-bucket histograms with
/// interned label sets. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct Registry {
    label_sets: Vec<Vec<(String, String)>>,
    label_ids: BTreeMap<Vec<(String, String)>, LabelSetId>,
    counters: Vec<Counter>,
    counter_ids: BTreeMap<(&'static str, LabelSetId), CounterId>,
    gauges: Vec<Gauge>,
    gauge_ids: BTreeMap<(&'static str, LabelSetId), GaugeId>,
    histograms: Vec<Histogram>,
    histogram_ids: BTreeMap<(&'static str, LabelSetId), HistogramId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Interns a label set, allocating the next dense id on first sight.
    /// Pairs are sorted by key, so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` intern to the same id.
    pub fn label_set(&mut self, labels: &[(&str, &str)]) -> LabelSetId {
        let mut set: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        set.sort();
        if let Some(&id) = self.label_ids.get(&set) {
            return id;
        }
        let id = LabelSetId(u32::try_from(self.label_sets.len()).expect("too many label sets"));
        self.label_sets.push(set.clone());
        self.label_ids.insert(set, id);
        id
    }

    /// Returns the counter registered as `(name, labels)`, creating it at
    /// zero on first sight. `name` must be a `'static` literal — metric
    /// names are code, not data.
    pub fn counter(&mut self, name: &'static str, labels: LabelSetId) -> CounterId {
        if let Some(&id) = self.counter_ids.get(&(name, labels)) {
            return id;
        }
        let id = CounterId(u32::try_from(self.counters.len()).expect("too many counters"));
        self.counters.push(Counter {
            name,
            labels,
            value: 0,
        });
        self.counter_ids.insert((name, labels), id);
        id
    }

    /// Increments a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize].value += by;
    }

    /// Returns the gauge registered as `(name, labels)`, creating it at
    /// zero on first sight.
    pub fn gauge(&mut self, name: &'static str, labels: LabelSetId) -> GaugeId {
        if let Some(&id) = self.gauge_ids.get(&(name, labels)) {
            return id;
        }
        let id = GaugeId(u32::try_from(self.gauges.len()).expect("too many gauges"));
        self.gauges.push(Gauge {
            name,
            labels,
            value: 0.0,
        });
        self.gauge_ids.insert((name, labels), id);
        id
    }

    /// Sets a gauge to an instantaneous value.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0 as usize].value = value;
    }

    /// Returns the histogram registered as `(name, labels)`, creating it
    /// with the given inclusive upper `bounds` (ascending) on first sight.
    /// An implicit overflow bucket catches values past the last bound.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending, or if the
    /// metric was first registered with different bounds — bucket layouts
    /// are fixed at registration so snapshots from different runs align.
    pub fn histogram(
        &mut self,
        name: &'static str,
        labels: LabelSetId,
        bounds: &[f64],
    ) -> HistogramId {
        assert!(!bounds.is_empty(), "histogram {name:?} needs bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly ascending"
        );
        if let Some(&id) = self.histogram_ids.get(&(name, labels)) {
            assert_eq!(
                self.histograms[id.0 as usize].bounds, bounds,
                "histogram {name:?} re-registered with different bounds"
            );
            return id;
        }
        let id = HistogramId(u32::try_from(self.histograms.len()).expect("too many histograms"));
        self.histograms.push(Histogram {
            name,
            labels,
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        });
        self.histogram_ids.insert((name, labels), id);
        id
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        let h = &mut self.histograms[id.0 as usize];
        let idx = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.buckets[idx] += 1;
        h.sum += value;
        h.count += 1;
    }

    fn labels_json(&self, id: LabelSetId) -> JsonValue {
        JsonValue::Object(
            self.label_sets[id.0 as usize]
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                .collect(),
        )
    }

    fn sort_key(&self, name: &str, labels: LabelSetId) -> (String, Vec<(String, String)>) {
        (name.to_owned(), self.label_sets[labels.0 as usize].clone())
    }

    /// Canonical snapshot of every registered metric, sorted by name then
    /// label set: `{"counters":[...],"gauges":[...],"histograms":[...]}`.
    /// Deterministic — two identical runs render byte-identical snapshots.
    pub fn snapshot(&self) -> JsonValue {
        let mut counters: Vec<&Counter> = self.counters.iter().collect();
        counters.sort_by_key(|c| self.sort_key(c.name, c.labels));
        let mut gauges: Vec<&Gauge> = self.gauges.iter().collect();
        gauges.sort_by_key(|g| self.sort_key(g.name, g.labels));
        let mut histograms: Vec<&Histogram> = self.histograms.iter().collect();
        histograms.sort_by_key(|h| self.sort_key(h.name, h.labels));

        object([
            (
                "counters",
                JsonValue::Array(
                    counters
                        .iter()
                        .map(|c| {
                            object([
                                ("name", JsonValue::Str(c.name.to_owned())),
                                ("labels", self.labels_json(c.labels)),
                                ("value", JsonValue::UInt(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Array(
                    gauges
                        .iter()
                        .map(|g| {
                            object([
                                ("name", JsonValue::Str(g.name.to_owned())),
                                ("labels", self.labels_json(g.labels)),
                                ("value", JsonValue::Num(g.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Array(
                    histograms
                        .iter()
                        .map(|h| {
                            let buckets = h
                                .bounds
                                .iter()
                                .map(Some)
                                .chain([None])
                                .zip(&h.buckets)
                                .map(|(le, &count)| {
                                    object([
                                        (
                                            "le",
                                            le.map_or(JsonValue::Str("+Inf".to_owned()), |&b| {
                                                JsonValue::Num(b)
                                            }),
                                        ),
                                        ("count", JsonValue::UInt(count)),
                                    ])
                                })
                                .collect();
                            object([
                                ("name", JsonValue::Str(h.name.to_owned())),
                                ("labels", self.labels_json(h.labels)),
                                ("buckets", JsonValue::Array(buckets)),
                                ("sum", JsonValue::Num(h.sum)),
                                ("count", JsonValue::UInt(h.count)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Flat series key for a metric: `name` alone for the empty label set,
    /// `name{k=v,...}` (keys sorted, as interned) otherwise.
    fn series_name(&self, name: &str, labels: LabelSetId) -> String {
        let set = &self.label_sets[labels.0 as usize];
        if set.is_empty() {
            return name.to_owned();
        }
        let pairs: Vec<String> = set.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{name}{{{}}}", pairs.join(","))
    }
}

/// Nearest-rank percentile estimate from fixed histogram buckets: the
/// inclusive upper bound of the bucket holding the rank-th observation,
/// clamped to the last finite bound for the overflow bucket. `None` when
/// the histogram is empty.
fn bucket_percentile(h: &Histogram, p: u64) -> Option<f64> {
    if h.count == 0 {
        return None;
    }
    let rank = (p * h.count).div_ceil(100).max(1);
    let mut cumulative = 0u64;
    for (i, &count) in h.buckets.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            let last = h.bounds.len() - 1;
            return Some(h.bounds[i.min(last)]);
        }
    }
    None
}

/// Default per-series sample cap of the sampling mode: generous enough for
/// any committed scenario (one sample per control interval), bounded so a
/// runaway horizon cannot grow memory without limit.
pub const DEFAULT_SERIES_CAP: usize = 4096;

/// The windowed time-series store behind [`RegistryObserver::with_sampling`].
#[derive(Debug)]
struct Sampler {
    cap: usize,
    series: BTreeMap<String, TimeSeries>,
    /// Counter value at the previous sample, keyed by series name, so each
    /// sample records the per-window delta.
    last_counters: BTreeMap<String, u64>,
    dropped: u64,
}

impl Sampler {
    fn new(cap: usize) -> Self {
        assert!(cap > 0, "series sampler needs capacity > 0");
        Sampler {
            cap,
            series: BTreeMap::new(),
            last_counters: BTreeMap::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, name: &str, at: SimTime, value: f64) {
        let s = self
            .series
            .entry(name.to_owned())
            .or_insert_with(|| TimeSeries::new(name));
        if s.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        s.record(at, value);
    }

    /// Takes one sample of the whole registry at sim time `at`.
    fn sample(&mut self, at: SimTime, reg: &Registry) {
        for c in &reg.counters {
            let name = reg.series_name(c.name, c.labels);
            let last = self.last_counters.get(&name).copied().unwrap_or(0);
            self.last_counters.insert(name.clone(), c.value);
            self.push(&name, at, (c.value - last) as f64);
        }
        for g in &reg.gauges {
            let name = reg.series_name(g.name, g.labels);
            self.push(&name, at, g.value);
        }
        for h in &reg.histograms {
            let base = reg.series_name(h.name, h.labels);
            for p in [50u64, 95, 99] {
                if let Some(v) = bucket_percentile(h, p) {
                    self.push(&format!("{base}:p{p}"), at, v);
                }
            }
        }
    }

    fn snapshot(&self) -> SeriesSnapshot {
        SeriesSnapshot {
            dropped: self.dropped,
            series: self.series.values().cloned().collect(),
        }
    }
}

/// The telemetry time-series of one sampled run: every registry series,
/// sorted by name, plus the count of samples dropped to the per-series
/// capacity bound. Canonical JSON via [`SeriesSnapshot::render`], inverse
/// [`SeriesSnapshot::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Samples discarded because a series hit the capacity bound.
    pub dropped: u64,
    /// One series per sampled metric (counters as windowed deltas, gauges
    /// as instantaneous values, histograms as `:p50`/`:p95`/`:p99` points),
    /// sorted by series name.
    pub series: Vec<TimeSeries>,
}

impl SeriesSnapshot {
    /// Canonical JSON: `{"dropped":N,"series":[{"name":...,"samples":[[ms,v],...]},...]}`.
    pub fn to_json(&self) -> JsonValue {
        object([
            ("dropped", JsonValue::UInt(self.dropped)),
            (
                "series",
                JsonValue::Array(self.series.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    /// Renders the canonical JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a document produced by [`SeriesSnapshot::render`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn parse(text: &str) -> Result<SeriesSnapshot, String> {
        let doc = JsonValue::parse(text)?;
        let dropped = doc
            .get("dropped")
            .and_then(JsonValue::as_u64)
            .ok_or("missing or mistyped \"dropped\"")?;
        let Some(JsonValue::Array(items)) = doc.get("series") else {
            return Err("missing or mistyped \"series\"".to_owned());
        };
        let mut series = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let ctx = |m: &str| format!("series {i}: {m}");
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ctx("missing or mistyped \"name\""))?;
            let Some(JsonValue::Array(samples)) = item.get("samples") else {
                return Err(ctx("missing or mistyped \"samples\""));
            };
            let mut ts = TimeSeries::new(name);
            for s in samples {
                let JsonValue::Array(pair) = s else {
                    return Err(ctx("sample is not a [millis,value] pair"));
                };
                let (Some(at), Some(v)) = (
                    pair.first().and_then(JsonValue::as_u64),
                    pair.get(1).and_then(JsonValue::as_f64),
                ) else {
                    return Err(ctx("sample is not a [millis,value] pair"));
                };
                ts.record(SimTime::from_millis(at), v);
            }
            series.push(ts);
        }
        Ok(SeriesSnapshot { dropped, series })
    }

    /// Looks up a series by exact name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// A copy with every series cut at `until` (samples after it removed):
    /// the postmortem slice of the telemetry up to a breach.
    pub fn sliced_until(&self, until: SimTime) -> SeriesSnapshot {
        SeriesSnapshot {
            dropped: self.dropped,
            series: self.series.iter().map(|s| s.sliced_until(until)).collect(),
        }
    }
}

/// Queue-depth histogram bounds (pending tasks at each heartbeat drain).
const QUEUE_DEPTH_BOUNDS: [f64; 8] = [0.0, 8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0, 32768.0];
/// Task-duration histogram bounds, in seconds.
const DURATION_BOUNDS: [f64; 9] = [5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0];
/// Candidate-set-size histogram bounds (per assignment decision).
const CANDIDATES_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// An [`Observer`] folding the typed event stream into a [`Registry`].
///
/// Populates, per event kind, an `events_total{type=...}` counter; per
/// machine, `tasks_started_total` / `task_failures_total`; cluster-wide
/// task-duration and queue-depth histograms, the fleet energy gauge, and —
/// when decision tracing is on — `assignment_decisions_total{kind=...}`
/// plus a candidate-set-size histogram.
#[derive(Debug)]
pub struct RegistryObserver {
    registry: Registry,
    /// Start time of each in-flight attempt, for duration observations.
    started: BTreeMap<(TaskId, MachineId), SimTime>,
    /// Telemetry sampling mode; `None` keeps the observer snapshot-only.
    sampler: Option<Sampler>,
}

impl Default for RegistryObserver {
    fn default() -> Self {
        RegistryObserver::new()
    }
}

impl RegistryObserver {
    /// Creates an observer over a fresh registry.
    pub fn new() -> Self {
        RegistryObserver {
            registry: Registry::new(),
            started: BTreeMap::new(),
            sampler: None,
        }
    }

    /// Creates an observer with telemetry sampling on (the
    /// [sampling mode](self#sampling-mode)), bounded at
    /// [`DEFAULT_SERIES_CAP`] samples per series.
    pub fn with_sampling() -> Self {
        RegistryObserver::with_sampling_capacity(DEFAULT_SERIES_CAP)
    }

    /// Sampling mode with an explicit per-series sample cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_sampling_capacity(cap: usize) -> Self {
        RegistryObserver {
            registry: Registry::new(),
            started: BTreeMap::new(),
            sampler: Some(Sampler::new(cap)),
        }
    }

    /// The populated registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The sampled telemetry time-series, or `None` when sampling is off.
    pub fn series_snapshot(&self) -> Option<SeriesSnapshot> {
        self.sampler.as_ref().map(Sampler::snapshot)
    }

    /// Consumes the observer, returning the registry.
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    fn count_event(&mut self, kind: &'static str) {
        let labels = self.registry.label_set(&[("type", kind)]);
        let id = self.registry.counter("events_total", labels);
        self.registry.inc(id, 1);
    }

    fn machine_counter(&mut self, name: &'static str, machine: MachineId) {
        let m = machine.index().to_string();
        let labels = self.registry.label_set(&[("machine", &m)]);
        let id = self.registry.counter(name, labels);
        self.registry.inc(id, 1);
    }

    fn slot_kind_tag(kind: SlotKind) -> &'static str {
        match kind {
            SlotKind::Map => "map",
            SlotKind::Reduce => "reduce",
        }
    }
}

impl Observer<SimEvent> for RegistryObserver {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        self.count_event(event.kind());
        match event {
            SimEvent::TaskStarted { task, machine, .. } => {
                self.machine_counter("tasks_started_total", *machine);
                self.started.insert((*task, *machine), at);
            }
            SimEvent::TaskCompleted {
                task, machine, won, ..
            } => {
                let outcome = if *won { "won" } else { "lost" };
                let labels = self.registry.label_set(&[
                    ("kind", Self::slot_kind_tag(task.task.kind)),
                    ("outcome", outcome),
                ]);
                let id = self.registry.counter("tasks_completed_total", labels);
                self.registry.inc(id, 1);
                if let Some(started) = self.started.remove(&(*task, *machine)) {
                    let kind_labels = self
                        .registry
                        .label_set(&[("kind", Self::slot_kind_tag(task.task.kind))]);
                    let h = self.registry.histogram(
                        "task_duration_seconds",
                        kind_labels,
                        &DURATION_BOUNDS,
                    );
                    self.registry.observe(h, (at - started).as_secs_f64());
                }
            }
            SimEvent::TaskFailed { task, machine, .. } => {
                self.machine_counter("task_failures_total", *machine);
                self.started.remove(&(*task, *machine));
            }
            SimEvent::HeartbeatDrained { pending_total, .. } => {
                let labels = self.registry.label_set(&[]);
                let h = self
                    .registry
                    .histogram("queue_depth", labels, &QUEUE_DEPTH_BOUNDS);
                self.registry.observe(h, *pending_total as f64);
            }
            SimEvent::ControlIntervalFired {
                cumulative_energy_joules,
                ..
            } => {
                let labels = self.registry.label_set(&[]);
                let g = self.registry.gauge("cumulative_energy_joules", labels);
                self.registry.set(g, *cumulative_energy_joules);
            }
            SimEvent::AssignmentDecision {
                kind, candidates, ..
            } => {
                let labels = self
                    .registry
                    .label_set(&[("kind", Self::slot_kind_tag(*kind))]);
                let id = self.registry.counter("assignment_decisions_total", labels);
                self.registry.inc(id, 1);
                let all = self.registry.label_set(&[]);
                let h = self
                    .registry
                    .histogram("decision_candidates", all, &CANDIDATES_BOUNDS);
                self.registry.observe(h, candidates.len() as f64);
            }
            SimEvent::MachineFailed { machine, .. } => {
                self.machine_counter("machine_failures_total", *machine);
            }
            SimEvent::RunFinished {
                total_energy_joules,
                total_tasks,
                ..
            } => {
                let labels = self.registry.label_set(&[]);
                let g = self.registry.gauge("cumulative_energy_joules", labels);
                self.registry.set(g, *total_energy_joules);
                let t = self.registry.gauge("total_tasks", labels);
                self.registry.set(t, *total_tasks as f64);
            }
            _ => {}
        }
        // Sample *after* folding, so the window closing at this control
        // tick (or at the run footer) includes the tick's own updates.
        if matches!(
            event,
            SimEvent::ControlIntervalFired { .. } | SimEvent::RunFinished { .. }
        ) {
            if let Some(sampler) = self.sampler.as_mut() {
                sampler.sample(at, &self.registry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{JobId, TaskIndex};

    #[test]
    fn label_sets_intern_like_group_ids() {
        let mut reg = Registry::new();
        let a = reg.label_set(&[("kind", "map"), ("machine", "3")]);
        let b = reg.label_set(&[("machine", "3"), ("kind", "map")]);
        let c = reg.label_set(&[("machine", "4"), ("kind", "map")]);
        assert_eq!(a, b, "order-insensitive interning");
        assert_ne!(a, c);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut reg = Registry::new();
        let l = reg.label_set(&[]);
        let c = reg.counter("hits", l);
        reg.inc(c, 2);
        let c2 = reg.counter("hits", l);
        assert_eq!(c, c2, "registration is idempotent");
        reg.inc(c2, 3);
        let g = reg.gauge("temp", l);
        reg.set(g, 1.5);
        let snap = reg.snapshot().render();
        assert!(
            snap.contains(r#""name":"hits","labels":{},"value":5"#),
            "{snap}"
        );
        assert!(
            snap.contains(r#""name":"temp","labels":{},"value":1.5"#),
            "{snap}"
        );
    }

    #[test]
    fn histograms_bucket_inclusively_with_overflow() {
        let mut reg = Registry::new();
        let l = reg.label_set(&[]);
        let h = reg.histogram("lat", l, &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            reg.observe(h, v);
        }
        let snap = reg.snapshot();
        let hist = snap.get("histograms").unwrap();
        let JsonValue::Array(items) = hist else {
            panic!("histograms not an array")
        };
        let rendered = items[0].render();
        // 0.5 and 1.0 land in le=1, 5.0 in le=10, 100.0 overflows.
        assert!(rendered.contains(r#"{"le":1,"count":2}"#), "{rendered}");
        assert!(rendered.contains(r#"{"le":10,"count":1}"#), "{rendered}");
        assert!(
            rendered.contains(r#"{"le":"+Inf","count":1}"#),
            "{rendered}"
        );
        assert!(rendered.contains(r#""count":4"#), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn bound_changes_are_rejected() {
        let mut reg = Registry::new();
        let l = reg.label_set(&[]);
        reg.histogram("lat", l, &[1.0, 10.0]);
        reg.histogram("lat", l, &[2.0, 20.0]);
    }

    #[test]
    fn snapshot_round_trips_through_json_parse() {
        let mut obs = RegistryObserver::new();
        let task = TaskId {
            job: JobId(0),
            task: TaskIndex {
                kind: SlotKind::Map,
                index: 1,
            },
        };
        obs.on_event(
            SimTime::from_secs(1),
            &SimEvent::TaskStarted {
                task,
                machine: MachineId(2),
                speculative: false,
            },
        );
        obs.on_event(
            SimTime::from_secs(31),
            &SimEvent::TaskCompleted {
                task,
                machine: MachineId(2),
                won: true,
                straggled: false,
                speculative: false,
            },
        );
        obs.on_event(
            SimTime::from_secs(32),
            &SimEvent::HeartbeatDrained {
                machine: MachineId(2),
                free_map: 1,
                free_reduce: 1,
                pending_total: 40,
            },
        );
        let snap = obs.registry().snapshot();
        let text = snap.render();
        // Integral floats render as integers and reparse as `UInt`, so the
        // canonical round-trip property is byte-stable re-rendering, not
        // structural identity.
        let reparsed = JsonValue::parse(&text).expect("snapshot is valid JSON");
        assert_eq!(reparsed.render(), text, "re-render must be byte-identical");
        let counters = reparsed.get("counters").expect("counters section");
        let JsonValue::Array(items) = counters else {
            panic!("counters not an array")
        };
        assert_eq!(items.len(), 5, "{text}");
    }

    fn tick(index: u64, joules: f64) -> SimEvent {
        SimEvent::ControlIntervalFired {
            index,
            cumulative_energy_joules: joules,
        }
    }

    #[test]
    fn sampling_records_counter_deltas_and_gauge_values() {
        let mut obs = RegistryObserver::with_sampling();
        obs.on_event(
            SimTime::from_secs(1),
            &SimEvent::JobCompleted { job: JobId(0) },
        );
        obs.on_event(SimTime::from_secs(300), &tick(0, 100.0));
        obs.on_event(
            SimTime::from_secs(301),
            &SimEvent::JobCompleted { job: JobId(1) },
        );
        obs.on_event(
            SimTime::from_secs(302),
            &SimEvent::JobCompleted { job: JobId(2) },
        );
        obs.on_event(SimTime::from_secs(600), &tick(1, 250.0));

        let snap = obs.series_snapshot().expect("sampling is on");
        let completed = snap
            .get("events_total{type=job_completed}")
            .expect("job_completed series");
        let samples: Vec<_> = completed.iter().collect();
        assert_eq!(
            samples,
            vec![
                (SimTime::from_secs(300), 1.0),
                (SimTime::from_secs(600), 2.0)
            ],
            "counter samples must be per-window deltas"
        );
        let energy = snap
            .get("cumulative_energy_joules")
            .expect("energy gauge series");
        assert_eq!(energy.last_value(), Some(250.0));
        // The tick counter saw itself: first window 1 tick, second 1 tick.
        let ticks = snap
            .get("events_total{type=control_interval_fired}")
            .expect("tick series");
        let deltas: Vec<f64> = ticks.iter().map(|(_, v)| v).collect();
        assert_eq!(deltas, vec![1.0, 1.0]);
    }

    #[test]
    fn sampling_emits_histogram_percentile_points() {
        let mut obs = RegistryObserver::with_sampling();
        for depth in [1u64, 10, 200] {
            obs.on_event(
                SimTime::from_secs(depth),
                &SimEvent::HeartbeatDrained {
                    machine: MachineId(0),
                    free_map: 0,
                    free_reduce: 0,
                    pending_total: depth,
                },
            );
        }
        obs.on_event(SimTime::from_secs(300), &tick(0, 1.0));
        let snap = obs.series_snapshot().unwrap();
        // 3 observations in buckets le=8, le=32, le=512: p50 → 32, p99 → 512.
        assert_eq!(
            snap.get("queue_depth:p50").and_then(TimeSeries::last_value),
            Some(32.0)
        );
        assert_eq!(
            snap.get("queue_depth:p99").and_then(TimeSeries::last_value),
            Some(512.0)
        );
    }

    #[test]
    fn sampling_cap_drops_and_counts() {
        let mut obs = RegistryObserver::with_sampling_capacity(2);
        for i in 0..4u64 {
            obs.on_event(SimTime::from_secs(i * 300), &tick(i, i as f64));
        }
        let snap = obs.series_snapshot().unwrap();
        assert!(snap.dropped > 0, "cap must count dropped samples");
        for s in &snap.series {
            assert!(s.len() <= 2, "series {} over cap", s.name());
        }
    }

    #[test]
    fn series_snapshot_round_trips_and_slices() {
        let mut obs = RegistryObserver::with_sampling();
        obs.on_event(
            SimTime::from_secs(1),
            &SimEvent::JobCompleted { job: JobId(0) },
        );
        obs.on_event(SimTime::from_secs(300), &tick(0, 12.5));
        obs.on_event(SimTime::from_secs(600), &tick(1, 80.0));
        let snap = obs.series_snapshot().unwrap();
        let text = snap.render();
        let reparsed = SeriesSnapshot::parse(&text).expect("valid series JSON");
        assert_eq!(reparsed.render(), text, "byte-stable re-render");

        let cut = snap.sliced_until(SimTime::from_secs(300));
        for s in &cut.series {
            assert!(
                s.iter().all(|(t, _)| t <= SimTime::from_secs(300)),
                "series {} leaked past the slice",
                s.name()
            );
        }
        assert_eq!(
            cut.get("cumulative_energy_joules").unwrap().last_value(),
            Some(12.5)
        );
    }

    #[test]
    fn snapshot_only_observer_has_no_series() {
        let mut obs = RegistryObserver::new();
        obs.on_event(SimTime::from_secs(300), &tick(0, 1.0));
        assert!(obs.series_snapshot().is_none());
    }
}
