//! Fixed-width text rendering for tables and figure series.
//!
//! The experiment binaries print every paper table/figure as text: tables
//! as aligned columns, curves as `(x, y...)` rows. Keeping rendering here
//! means every figure looks the same and EXPERIMENTS.md can embed the
//! output verbatim.

use std::fmt::Write as _;

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use metrics::report::Table;
///
/// let mut t = Table::new("Fig. X", &["machine", "energy (kJ)"]);
/// t.row(&["Desktop".to_owned(), "12.3".to_owned()]);
/// let s = t.render();
/// assert!(s.contains("Fig. X"));
/// assert!(s.contains("Desktop"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of a label plus numeric cells rendered
    /// with `precision` decimals.
    pub fn num_row(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = vec![label.to_owned()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render_row(&self.headers));
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row).trim_end());
        }
        out
    }
}

/// Renders an x/y multi-series ("figure") as a table of one x column plus
/// one column per series — the text equivalent of the paper's line plots.
///
/// # Panics
///
/// Panics if any series length differs from `xs`.
pub fn render_series(
    title: &str,
    x_label: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    precision: usize,
) -> String {
    let mut headers = vec![x_label];
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series '{name}' length mismatch");
        headers.push(name);
    }
    let mut table = Table::new(title, &headers);
    for (i, &x) in xs.iter().enumerate() {
        let mut cells = vec![format!("{x:.precision$}")];
        for (_, ys) in series {
            cells.push(format!("{v:.precision$}", v = ys[i]));
        }
        table.row(&cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(&["a".to_owned(), "1".to_owned()]);
        t.row(&["longer".to_owned(), "22".to_owned()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== T ==");
        assert!(lines[1].starts_with("name"));
        // Both value cells start at the same column.
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    fn num_row_formats_precision() {
        let mut t = Table::new("T", &["name", "v"]);
        t.num_row("x", &[1.23456], 2);
        assert!(t.render().contains("1.23"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width must match header width")]
    fn row_width_checked() {
        Table::new("T", &["a", "b"]).row(&["only-one".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "a table needs at least one column")]
    fn empty_headers_rejected() {
        Table::new("T", &[]);
    }

    #[test]
    fn series_render() {
        let s = render_series(
            "Fig",
            "rate",
            &[1.0, 2.0],
            &[("a", vec![0.1, 0.2]), ("b", vec![0.3, 0.4])],
            1,
        );
        assert!(s.contains("rate"));
        assert!(s.contains("0.4"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_checked() {
        let _ = render_series("F", "x", &[1.0], &[("a", vec![])], 1);
    }
}
