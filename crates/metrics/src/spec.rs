//! Shared machinery for decoding *specification documents* — canonical-JSON
//! files that describe what to run rather than what happened.
//!
//! The trace codec ([`crate::trace`]) established the error contract this
//! module generalizes: a bad input names the offending line and shows a
//! bounded snippet of it, so a typo in a 60-line scenario file points
//! straight at the damage. Decoders build on three pieces:
//!
//! * [`SpecError`] — a dotted-path + message pair (`` `engine.fault.crash_mtbf_s`:
//!   must be positive ``), produced while walking a parsed [`JsonValue`].
//! * [`ObjectView`] — a path-carrying cursor over a JSON object with typed
//!   accessors ([`ObjectView::u64`], [`ObjectView::f64`], …), required-key
//!   checks and [`ObjectView::deny_unknown`] for strict schemas.
//! * [`with_context`] / [`syntax_context`] — map a [`SpecError`] or a raw
//!   [`JsonValue::parse`] byte-offset error back onto the original text,
//!   yielding the `line N: …; offending line: …` format of
//!   [`crate::trace::read_trace_lines`].
//!
//! The module also hosts [`fnv1a_64`], the digest used to key run databases
//! by spec content, and [`snippet`], the UTF-8-safe line truncation shared
//! with the trace reader.

use crate::emit::JsonValue;

/// A semantic error at a dotted path inside a spec document, e.g.
/// `` `engine.reduce_slowstart`: must be in (0, 1] ``.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted path of the offending value (`workload.streams[2].count`).
    pub path: String,
    /// What is wrong with it.
    pub message: String,
}

impl SpecError {
    /// Creates an error at `path` with `message`.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "`{}`: {}", self.path, self.message)
    }
}

/// Fails with a [`SpecError`] at `path` unless `cond` holds.
///
/// # Errors
///
/// Returns `SpecError::new(path, message)` when `cond` is false.
pub fn ensure(cond: bool, path: &str, message: &str) -> Result<(), SpecError> {
    if cond {
        Ok(())
    } else {
        Err(SpecError::new(path, message))
    }
}

/// A cursor over one JSON object that remembers its dotted path from the
/// document root, so every accessor failure names the exact value.
#[derive(Debug, Clone)]
pub struct ObjectView<'a> {
    fields: &'a [(String, JsonValue)],
    path: String,
}

impl<'a> ObjectView<'a> {
    /// Views the document root, which must be an object.
    ///
    /// # Errors
    ///
    /// Returns an error at `(root)` if `value` is not a JSON object.
    pub fn root(value: &'a JsonValue) -> Result<Self, SpecError> {
        Self::new(value, "(root)")
    }

    /// Views `value` (which must be an object) at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error at `path` if `value` is not a JSON object.
    pub fn new(value: &'a JsonValue, path: impl Into<String>) -> Result<Self, SpecError> {
        let path = path.into();
        match value {
            JsonValue::Object(fields) => Ok(Self { fields, path }),
            other => Err(SpecError::new(
                path,
                format!("expected an object, found {}", kind_name(other)),
            )),
        }
    }

    /// The dotted path of this object from the document root.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The dotted path of `key` inside this object.
    #[must_use]
    pub fn child_path(&self, key: &str) -> String {
        if self.path == "(root)" {
            key.to_owned()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Rejects any key not in `allowed` — strict schemas catch typos
    /// (`"crash_mtbf"` for `"crash_mtbf_s"`) instead of silently ignoring
    /// them.
    ///
    /// # Errors
    ///
    /// Returns an error at the first unknown key's path.
    pub fn deny_unknown(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (key, _) in self.fields {
            if !allowed.contains(&key.as_str()) {
                return Err(SpecError::new(self.child_path(key), "unknown key"));
            }
        }
        Ok(())
    }

    /// Raw lookup; `null` counts as present here (use the `opt_*` accessors
    /// to treat it as absent).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&'a JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The value at `key`, which must exist.
    ///
    /// # Errors
    ///
    /// Returns a `missing required key` error at the key's path.
    pub fn required(&self, key: &str) -> Result<&'a JsonValue, SpecError> {
        self.get(key)
            .ok_or_else(|| SpecError::new(self.child_path(key), "missing required key"))
    }

    fn non_null(&self, key: &str) -> Option<&'a JsonValue> {
        match self.get(key) {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(v),
        }
    }

    /// Required unsigned integer.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is missing or not an unsigned integer.
    pub fn u64(&self, key: &str) -> Result<u64, SpecError> {
        self.coerce_u64(key, self.required(key)?)
    }

    /// Optional unsigned integer; `null` and absence both mean `None`.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is present but not an unsigned integer.
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, SpecError> {
        self.non_null(key)
            .map(|v| self.coerce_u64(key, v))
            .transpose()
    }

    fn coerce_u64(&self, key: &str, value: &JsonValue) -> Result<u64, SpecError> {
        match value {
            JsonValue::UInt(n) => Ok(*n),
            other => Err(SpecError::new(
                self.child_path(key),
                format!("expected an unsigned integer, found {}", kind_name(other)),
            )),
        }
    }

    /// Required finite number (integers coerce).
    ///
    /// # Errors
    ///
    /// Returns an error when the key is missing or not a number.
    pub fn f64(&self, key: &str) -> Result<f64, SpecError> {
        self.coerce_f64(key, self.required(key)?)
    }

    /// Optional number; `null` and absence both mean `None`.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is present but not a number.
    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, SpecError> {
        self.non_null(key)
            .map(|v| self.coerce_f64(key, v))
            .transpose()
    }

    fn coerce_f64(&self, key: &str, value: &JsonValue) -> Result<f64, SpecError> {
        match value.as_f64() {
            Some(x) => Ok(x),
            None => Err(SpecError::new(
                self.child_path(key),
                format!("expected a number, found {}", kind_name(value)),
            )),
        }
    }

    /// Required string.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is missing or not a string.
    pub fn string(&self, key: &str) -> Result<&'a str, SpecError> {
        match self.required(key)? {
            JsonValue::Str(s) => Ok(s),
            other => Err(SpecError::new(
                self.child_path(key),
                format!("expected a string, found {}", kind_name(other)),
            )),
        }
    }

    /// Optional string; `null` and absence both mean `None`.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is present but not a string.
    pub fn opt_string(&self, key: &str) -> Result<Option<&'a str>, SpecError> {
        match self.non_null(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(other) => Err(SpecError::new(
                self.child_path(key),
                format!("expected a string, found {}", kind_name(other)),
            )),
        }
    }

    /// Optional boolean; `null` and absence both mean `None`.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is present but not a boolean.
    pub fn opt_bool(&self, key: &str) -> Result<Option<bool>, SpecError> {
        match self.non_null(key) {
            None => Ok(None),
            Some(JsonValue::Bool(b)) => Ok(Some(*b)),
            Some(other) => Err(SpecError::new(
                self.child_path(key),
                format!("expected a boolean, found {}", kind_name(other)),
            )),
        }
    }

    /// Required array.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is missing or not an array.
    pub fn array(&self, key: &str) -> Result<&'a [JsonValue], SpecError> {
        match self.required(key)? {
            JsonValue::Array(items) => Ok(items),
            other => Err(SpecError::new(
                self.child_path(key),
                format!("expected an array, found {}", kind_name(other)),
            )),
        }
    }

    /// Required child object, viewed at its own path.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is missing or not an object.
    pub fn obj(&self, key: &str) -> Result<ObjectView<'a>, SpecError> {
        ObjectView::new(self.required(key)?, self.child_path(key))
    }

    /// Optional child object; `null` and absence both mean `None`.
    ///
    /// # Errors
    ///
    /// Returns an error when the key is present but not an object.
    pub fn opt_obj(&self, key: &str) -> Result<Option<ObjectView<'a>>, SpecError> {
        self.non_null(key)
            .map(|v| ObjectView::new(v, self.child_path(key)))
            .transpose()
    }
}

fn kind_name(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::UInt(_) | JsonValue::Num(_) => "a number",
        JsonValue::Str(_) => "a string",
        JsonValue::Array(_) => "an array",
        JsonValue::Object(_) => "an object",
    }
}

/// Locates a [`SpecError`] in the original document text and renders it in
/// the trace reader's format: `line N: `path`: message; offending line: …`.
///
/// The line is found by walking the error's dotted path front to back,
/// searching for each `"key"` at or after the previous segment's position —
/// so repeated key names (every stream has a `"kind"`) resolve to the right
/// occurrence. Missing-key errors land on the innermost *present* ancestor.
#[must_use]
pub fn with_context(input: &str, err: &SpecError) -> String {
    match locate_path(input, &err.path) {
        Some(pos) => {
            let (line_no, line) = line_at(input, pos);
            format!("line {line_no}: {err}; offending line: {}", snippet(line))
        }
        None => err.to_string(),
    }
}

/// Renders a raw [`JsonValue::parse`] error (which reports a byte offset)
/// against the original text, in the same `line N: …; offending line: …`
/// format as [`with_context`].
#[must_use]
pub fn syntax_context(input: &str, parse_err: &str) -> String {
    let byte = parse_err
        .rfind("byte ")
        .and_then(|i| parse_err[i + 5..].parse::<usize>().ok());
    match byte {
        Some(b) => {
            let pos = b.min(input.len().saturating_sub(1));
            let (line_no, line) = line_at(input, pos);
            format!(
                "line {line_no}: {parse_err}; offending line: {}",
                snippet(line)
            )
        }
        None => parse_err.to_owned(),
    }
}

/// Best-effort byte position of the value a dotted path names.
fn locate_path(input: &str, path: &str) -> Option<usize> {
    let mut found = None;
    let mut from = 0usize;
    for segment in path.split('.') {
        // `streams[2]` and `seeds[0]` search by the bare key name.
        let key = segment.split('[').next().unwrap_or(segment);
        if key.is_empty() || key == "(root)" {
            continue;
        }
        let needle = format!("\"{key}\"");
        match input[from..].find(&needle) {
            Some(off) => {
                let pos = from + off;
                found = Some(pos);
                from = pos + needle.len();
            }
            // Missing key: report the deepest ancestor that *is* present.
            None => break,
        }
    }
    found
}

/// The 1-based line number and full line containing byte `pos`.
fn line_at(input: &str, pos: usize) -> (usize, &str) {
    let pos = pos.min(input.len());
    let line_no = input[..pos].bytes().filter(|&b| b == b'\n').count() + 1;
    let start = input[..pos].rfind('\n').map_or(0, |i| i + 1);
    let end = input[start..].find('\n').map_or(input.len(), |i| start + i);
    (line_no, input[start..end].trim_end_matches('\r'))
}

/// Truncates a line for error messages, respecting UTF-8 boundaries.
#[must_use]
pub fn snippet(line: &str) -> String {
    const MAX: usize = 120;
    let line = line.trim();
    if line.len() <= MAX {
        return line.to_owned();
    }
    let mut end = MAX;
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}... [{} bytes total]", &line[..end], line.len())
}

/// FNV-1a 64-bit digest — the content hash keying run-database manifests
/// and golden trace digests. Stable across platforms and releases by
/// construction. One shared implementation lives in [`simcore`] (the fork
/// labels of [`simcore::SimRng`] use the same hash); this re-export is the
/// canonical name the metrics/experiments layers use.
pub use simcore::fnv1a_64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_and_paths() {
        let doc = JsonValue::parse(r#"{"a":{"b":7,"s":"x","f":1.5,"n":null}}"#).unwrap();
        let root = ObjectView::root(&doc).unwrap();
        let a = root.obj("a").unwrap();
        assert_eq!(a.path(), "a");
        assert_eq!(a.u64("b").unwrap(), 7);
        assert_eq!(a.string("s").unwrap(), "x");
        assert!((a.f64("f").unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(a.opt_u64("n").unwrap(), None);
        assert_eq!(a.opt_u64("missing").unwrap(), None);
        let err = a.u64("s").unwrap_err();
        assert_eq!(err.path, "a.s");
        let err = a.required("zzz").unwrap_err();
        assert_eq!(err.path, "a.zzz");
        assert_eq!(err.message, "missing required key");
    }

    #[test]
    fn deny_unknown_names_the_stray_key() {
        let doc = JsonValue::parse(r#"{"good":1,"tyop":2}"#).unwrap();
        let root = ObjectView::root(&doc).unwrap();
        let err = root.deny_unknown(&["good"]).unwrap_err();
        assert_eq!(err.path, "tyop");
        assert_eq!(err.message, "unknown key");
    }

    #[test]
    fn with_context_points_at_the_right_line() {
        let input =
            "{\n  \"engine\": {\n    \"fault\": {\n      \"crash_mtbf_s\": 0\n    }\n  }\n}";
        let err = SpecError::new("engine.fault.crash_mtbf_s", "must be positive");
        let msg = with_context(input, &err);
        assert!(msg.starts_with("line 4: "), "{msg}");
        assert!(msg.contains("`engine.fault.crash_mtbf_s`: must be positive"));
        assert!(msg.contains("offending line: \"crash_mtbf_s\": 0"), "{msg}");
    }

    #[test]
    fn with_context_resolves_repeated_keys_in_order() {
        let input = "{\n\"a\": {\"kind\": \"x\"},\n\"b\": {\"kind\": \"y\"}\n}";
        let msg = with_context(input, &SpecError::new("b.kind", "bad"));
        assert!(msg.starts_with("line 3: "), "{msg}");
    }

    #[test]
    fn missing_key_falls_back_to_parent_line() {
        let input = "{\n  \"engine\": {\n    \"heartbeat_s\": 3\n  }\n}";
        let err = SpecError::new("engine.nope", "missing required key");
        let msg = with_context(input, &err);
        assert!(msg.starts_with("line 2: "), "{msg}");
    }

    #[test]
    fn syntax_context_maps_byte_offsets_to_lines() {
        let input = "{\n  \"seeds\": [1,\n}";
        let err = JsonValue::parse(input).unwrap_err();
        let msg = syntax_context(input, &err);
        assert!(msg.starts_with("line 3: "), "{msg}");
        assert!(msg.contains("offending line: }"), "{msg}");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
