//! Canonical JSONL encoding of the simulation event stream.
//!
//! Each trace line is one compact JSON object: `{"at":<millis>,
//! "type":"<kind>", ...payload}` with the payload keys in a fixed order, so
//! byte-identical traces mean identical event streams (the golden trace
//! digest test relies on this). [`JsonlTraceSink`] is the [`Observer`] that
//! writes the stream; [`parse_trace_line`] is its inverse, used by the
//! `--replay` validation path to re-drive streaming consumers from a file.

use std::io;

use cluster::{MachineId, SlotKind};
use hadoop_sim::trace::Observer;
use hadoop_sim::{DecisionCandidate, PowerState, SimEvent};
use simcore::SimTime;
use workload::{JobId, TaskId, TaskIndex};

use crate::emit::{object, JsonValue, ToJson};
use crate::spec::snippet;

impl ToJson for PowerState {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(power_state_tag(*self).to_owned())
    }
}

fn power_state_tag(state: PowerState) -> &'static str {
    match state {
        PowerState::Nominal => "nominal",
        PowerState::Eco => "eco",
        PowerState::Standby => "standby",
        PowerState::Waking => "waking",
    }
}

impl ToJson for SimEvent {
    /// The payload object, without the `at`/`type` envelope (see
    /// [`trace_line`] for the full line).
    fn to_json(&self) -> JsonValue {
        match self {
            SimEvent::JobSubmitted { job, tasks } => object([
                ("job", job.to_json()),
                ("tasks", JsonValue::UInt(u64::from(*tasks))),
            ]),
            SimEvent::JobCompleted { job } => object([("job", job.to_json())]),
            SimEvent::TaskStarted {
                task,
                machine,
                speculative,
            } => object([
                ("task", task.to_json()),
                ("machine", machine.to_json()),
                ("speculative", JsonValue::Bool(*speculative)),
            ]),
            SimEvent::TaskCompleted {
                task,
                machine,
                won,
                straggled,
                speculative,
            } => object([
                ("task", task.to_json()),
                ("machine", machine.to_json()),
                ("won", JsonValue::Bool(*won)),
                ("straggled", JsonValue::Bool(*straggled)),
                ("speculative", JsonValue::Bool(*speculative)),
            ]),
            SimEvent::HeartbeatDrained {
                machine,
                free_map,
                free_reduce,
                pending_total,
            } => object([
                ("machine", machine.to_json()),
                ("free_map", JsonValue::UInt(u64::from(*free_map))),
                ("free_reduce", JsonValue::UInt(u64::from(*free_reduce))),
                ("pending_total", JsonValue::UInt(*pending_total)),
            ]),
            SimEvent::SlotOccupancyChanged {
                machine,
                kind,
                occupied,
                capacity,
            } => object([
                ("machine", machine.to_json()),
                ("kind", kind.to_json()),
                ("occupied", JsonValue::UInt(u64::from(*occupied))),
                ("capacity", JsonValue::UInt(u64::from(*capacity))),
            ]),
            SimEvent::PowerStateChanged { machine, state } => {
                object([("machine", machine.to_json()), ("state", state.to_json())])
            }
            SimEvent::SpeculationLaunched { task, machine } => {
                object([("task", task.to_json()), ("machine", machine.to_json())])
            }
            SimEvent::ControlIntervalFired {
                index,
                cumulative_energy_joules,
            } => object([
                ("index", JsonValue::UInt(*index)),
                (
                    "cumulative_energy_joules",
                    JsonValue::Num(*cumulative_energy_joules),
                ),
            ]),
            SimEvent::PheromoneUpdated { job, overlap } => object([
                ("job", job.to_json()),
                ("overlap", overlap.map_or(JsonValue::Null, JsonValue::Num)),
            ]),
            SimEvent::EnergyModelRefit {
                profile,
                idle_watts,
                alpha_watts,
            } => object([
                ("profile", JsonValue::Str(profile.clone())),
                ("idle_watts", JsonValue::Num(*idle_watts)),
                ("alpha_watts", JsonValue::Num(*alpha_watts)),
            ]),
            SimEvent::TaskFailed {
                task,
                machine,
                crash,
            } => object([
                ("task", task.to_json()),
                ("machine", machine.to_json()),
                ("crash", JsonValue::Bool(*crash)),
            ]),
            SimEvent::MachineFailed {
                machine,
                attempts_lost,
            } => object([
                ("machine", machine.to_json()),
                ("attempts_lost", JsonValue::UInt(u64::from(*attempts_lost))),
            ]),
            SimEvent::MapOutputLost { task, machine } => {
                object([("task", task.to_json()), ("machine", machine.to_json())])
            }
            SimEvent::MachineRecovered { machine } => object([("machine", machine.to_json())]),
            SimEvent::MachineBlacklisted { machine, failures } => object([
                ("machine", machine.to_json()),
                ("failures", JsonValue::UInt(u64::from(*failures))),
            ]),
            SimEvent::AssignmentDecision {
                machine,
                kind,
                chosen,
                candidates,
            } => object([
                ("machine", machine.to_json()),
                ("kind", kind.to_json()),
                ("chosen", chosen.to_json()),
                (
                    "candidates",
                    JsonValue::Array(candidates.iter().map(candidate_json).collect()),
                ),
            ]),
            SimEvent::RunFinished {
                drained,
                total_energy_joules,
                total_tasks,
            } => object([
                ("drained", JsonValue::Bool(*drained)),
                ("total_energy_joules", JsonValue::Num(*total_energy_joules)),
                ("total_tasks", JsonValue::UInt(*total_tasks)),
            ]),
        }
    }
}

fn candidate_json(c: &DecisionCandidate) -> JsonValue {
    object([
        ("job", c.job.to_json()),
        ("local", JsonValue::Bool(c.local)),
        ("tau", c.tau.map_or(JsonValue::Null, JsonValue::Num)),
        (
            "eta_fairness",
            c.eta_fairness.map_or(JsonValue::Null, JsonValue::Num),
        ),
        (
            "eta_locality",
            c.eta_locality.map_or(JsonValue::Null, JsonValue::Num),
        ),
        ("probability", JsonValue::Num(c.probability)),
    ])
}

/// Renders one canonical trace line (no trailing newline):
/// `{"at":<millis>,"type":"<kind>",...payload}`.
pub fn trace_line(at: SimTime, event: &SimEvent) -> String {
    let mut fields = vec![
        ("at".to_owned(), at.to_json()),
        ("type".to_owned(), JsonValue::Str(event.kind().to_owned())),
    ];
    match event.to_json() {
        JsonValue::Object(payload) => fields.extend(payload),
        other => fields.push(("payload".to_owned(), other)),
    }
    JsonValue::Object(fields).render()
}

/// Parses one trace line back into its timestamp and event — the inverse of
/// [`trace_line`].
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field (or the JSON
/// syntax error) on malformed lines.
pub fn parse_trace_line(line: &str) -> Result<(SimTime, SimEvent), String> {
    let doc = JsonValue::parse(line)?;
    let at = SimTime::from_millis(field_u64(&doc, "at")?);
    let kind = doc
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"type\"")?;
    let event = match kind {
        "job_submitted" => SimEvent::JobSubmitted {
            job: field_job(&doc, "job")?,
            tasks: field_u32(&doc, "tasks")?,
        },
        "job_completed" => SimEvent::JobCompleted {
            job: field_job(&doc, "job")?,
        },
        "task_started" => SimEvent::TaskStarted {
            task: field_task(&doc, "task")?,
            machine: field_machine(&doc, "machine")?,
            speculative: field_bool(&doc, "speculative")?,
        },
        "task_completed" => SimEvent::TaskCompleted {
            task: field_task(&doc, "task")?,
            machine: field_machine(&doc, "machine")?,
            won: field_bool(&doc, "won")?,
            straggled: field_bool(&doc, "straggled")?,
            speculative: field_bool(&doc, "speculative")?,
        },
        "heartbeat_drained" => SimEvent::HeartbeatDrained {
            machine: field_machine(&doc, "machine")?,
            free_map: field_u32(&doc, "free_map")?,
            free_reduce: field_u32(&doc, "free_reduce")?,
            pending_total: field_u64(&doc, "pending_total")?,
        },
        "slot_occupancy_changed" => SimEvent::SlotOccupancyChanged {
            machine: field_machine(&doc, "machine")?,
            kind: field_slot_kind(&doc, "kind")?,
            occupied: field_u32(&doc, "occupied")?,
            capacity: field_u32(&doc, "capacity")?,
        },
        "power_state_changed" => SimEvent::PowerStateChanged {
            machine: field_machine(&doc, "machine")?,
            state: field_power_state(&doc, "state")?,
        },
        "speculation_launched" => SimEvent::SpeculationLaunched {
            task: field_task(&doc, "task")?,
            machine: field_machine(&doc, "machine")?,
        },
        "control_interval_fired" => SimEvent::ControlIntervalFired {
            index: field_u64(&doc, "index")?,
            cumulative_energy_joules: field_f64(&doc, "cumulative_energy_joules")?,
        },
        "pheromone_updated" => SimEvent::PheromoneUpdated {
            job: field_job(&doc, "job")?,
            overlap: match doc.get("overlap") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("mistyped \"overlap\"")?),
            },
        },
        "energy_model_refit" => SimEvent::EnergyModelRefit {
            profile: doc
                .get("profile")
                .and_then(JsonValue::as_str)
                .ok_or("missing \"profile\"")?
                .to_owned(),
            idle_watts: field_f64(&doc, "idle_watts")?,
            alpha_watts: field_f64(&doc, "alpha_watts")?,
        },
        "task_failed" => SimEvent::TaskFailed {
            task: field_task(&doc, "task")?,
            machine: field_machine(&doc, "machine")?,
            crash: field_bool(&doc, "crash")?,
        },
        "machine_failed" => SimEvent::MachineFailed {
            machine: field_machine(&doc, "machine")?,
            attempts_lost: field_u32(&doc, "attempts_lost")?,
        },
        "map_output_lost" => SimEvent::MapOutputLost {
            task: field_task(&doc, "task")?,
            machine: field_machine(&doc, "machine")?,
        },
        "machine_recovered" => SimEvent::MachineRecovered {
            machine: field_machine(&doc, "machine")?,
        },
        "machine_blacklisted" => SimEvent::MachineBlacklisted {
            machine: field_machine(&doc, "machine")?,
            failures: field_u32(&doc, "failures")?,
        },
        "assignment_decision" => SimEvent::AssignmentDecision {
            machine: field_machine(&doc, "machine")?,
            kind: field_slot_kind(&doc, "kind")?,
            chosen: field_job(&doc, "chosen")?,
            candidates: field_candidates(&doc, "candidates")?,
        },
        "run_finished" => SimEvent::RunFinished {
            drained: field_bool(&doc, "drained")?,
            total_energy_joules: field_f64(&doc, "total_energy_joules")?,
            total_tasks: field_u64(&doc, "total_tasks")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok((at, event))
}

fn field_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or mistyped {key:?}"))
}

fn field_u32(doc: &JsonValue, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(doc, key)?).map_err(|_| format!("{key:?} out of range"))
}

fn field_f64(doc: &JsonValue, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or mistyped {key:?}"))
}

fn field_bool(doc: &JsonValue, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing or mistyped {key:?}"))
}

fn field_job(doc: &JsonValue, key: &str) -> Result<JobId, String> {
    field_u64(doc, key).map(JobId)
}

fn field_machine(doc: &JsonValue, key: &str) -> Result<MachineId, String> {
    let n = field_u64(doc, key)?;
    usize::try_from(n)
        .map(MachineId)
        .map_err(|_| format!("{key:?} out of range"))
}

fn field_slot_kind(doc: &JsonValue, key: &str) -> Result<SlotKind, String> {
    match doc.get(key).and_then(JsonValue::as_str) {
        Some("map") => Ok(SlotKind::Map),
        Some("reduce") => Ok(SlotKind::Reduce),
        _ => Err(format!("missing or mistyped {key:?}")),
    }
}

fn field_power_state(doc: &JsonValue, key: &str) -> Result<PowerState, String> {
    match doc.get(key).and_then(JsonValue::as_str) {
        Some("nominal") => Ok(PowerState::Nominal),
        Some("eco") => Ok(PowerState::Eco),
        Some("standby") => Ok(PowerState::Standby),
        Some("waking") => Ok(PowerState::Waking),
        _ => Err(format!("missing or mistyped {key:?}")),
    }
}

fn field_opt_f64(doc: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("mistyped {key:?}")),
    }
}

fn field_candidates(doc: &JsonValue, key: &str) -> Result<Vec<DecisionCandidate>, String> {
    let Some(JsonValue::Array(items)) = doc.get(key) else {
        return Err(format!("missing or mistyped {key:?}"));
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let ctx = |e: String| format!("candidate {i}: {e}");
            Ok(DecisionCandidate {
                job: field_job(item, "job").map_err(ctx)?,
                local: field_bool(item, "local").map_err(ctx)?,
                tau: field_opt_f64(item, "tau").map_err(ctx)?,
                eta_fairness: field_opt_f64(item, "eta_fairness").map_err(ctx)?,
                eta_locality: field_opt_f64(item, "eta_locality").map_err(ctx)?,
                probability: field_f64(item, "probability").map_err(ctx)?,
            })
        })
        .collect()
}

fn field_task(doc: &JsonValue, key: &str) -> Result<TaskId, String> {
    let obj = doc.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    Ok(TaskId {
        job: field_job(obj, "job")?,
        task: TaskIndex {
            kind: field_slot_kind(obj, "kind")?,
            index: field_u32(obj, "index")?,
        },
    })
}

/// An [`Observer`] that appends one canonical JSONL line per event to a
/// writer.
///
/// I/O errors are sticky: the first failure is retained, later events are
/// dropped, and [`JsonlTraceSink::finish`] surfaces the error. This keeps
/// `on_event` infallible (observers cannot abort the simulation).
pub struct JsonlTraceSink<W: io::Write> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlTraceSink<W> {
    /// Wraps a writer. Buffer it (`io::BufWriter`) for file targets — the
    /// sink writes one line per event.
    pub fn new(writer: W) -> Self {
        JsonlTraceSink {
            writer,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first I/O error encountered.
    ///
    /// # Errors
    ///
    /// Returns the retained write error, or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: io::Write> std::fmt::Debug for JsonlTraceSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlTraceSink")
            .field("lines", &self.lines)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl<W: io::Write> Observer<SimEvent> for JsonlTraceSink<W> {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = trace_line(at, event);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Parses a whole JSONL trace, keeping each event's 1-based line number.
/// Blank lines are skipped (a partially-flushed trace may end in one).
///
/// # Errors
///
/// Stops at the first bad line with a message carrying the line number and
/// the offending snippet — `line 7: missing "type"; offending line: {...}` —
/// so a malformed or truncated trace points straight at the damage instead
/// of failing opaquely.
pub fn read_trace_lines<R: io::BufRead>(
    reader: R,
) -> Result<Vec<(usize, SimTime, SimEvent)>, String> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let n = idx + 1;
        let line = line.map_err(|e| format!("line {n}: read error: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let (at, event) = parse_trace_line(&line)
            .map_err(|e| format!("line {n}: {e}; offending line: {}", snippet(&line)))?;
        out.push((n, at, event));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SimEvent> {
        let task = TaskId {
            job: JobId(3),
            task: TaskIndex {
                kind: SlotKind::Reduce,
                index: 7,
            },
        };
        vec![
            SimEvent::JobSubmitted {
                job: JobId(3),
                tasks: 12,
            },
            SimEvent::TaskStarted {
                task,
                machine: MachineId(5),
                speculative: false,
            },
            SimEvent::HeartbeatDrained {
                machine: MachineId(5),
                free_map: 2,
                free_reduce: 0,
                pending_total: 40,
            },
            SimEvent::SlotOccupancyChanged {
                machine: MachineId(5),
                kind: SlotKind::Reduce,
                occupied: 2,
                capacity: 2,
            },
            SimEvent::PowerStateChanged {
                machine: MachineId(1),
                state: PowerState::Eco,
            },
            SimEvent::SpeculationLaunched {
                task,
                machine: MachineId(0),
            },
            SimEvent::TaskCompleted {
                task,
                machine: MachineId(5),
                won: true,
                straggled: true,
                speculative: false,
            },
            SimEvent::ControlIntervalFired {
                index: 4,
                cumulative_energy_joules: 123.456,
            },
            SimEvent::PheromoneUpdated {
                job: JobId(3),
                overlap: Some(0.875),
            },
            SimEvent::PheromoneUpdated {
                job: JobId(4),
                overlap: None,
            },
            SimEvent::EnergyModelRefit {
                profile: "Atom".into(),
                idle_watts: 25.0,
                alpha_watts: 11.5,
            },
            SimEvent::TaskFailed {
                task,
                machine: MachineId(5),
                crash: false,
            },
            SimEvent::MachineFailed {
                machine: MachineId(2),
                attempts_lost: 3,
            },
            SimEvent::MapOutputLost {
                task,
                machine: MachineId(2),
            },
            SimEvent::MachineRecovered {
                machine: MachineId(2),
            },
            SimEvent::MachineBlacklisted {
                machine: MachineId(5),
                failures: 12,
            },
            SimEvent::AssignmentDecision {
                machine: MachineId(5),
                kind: SlotKind::Reduce,
                chosen: JobId(3),
                candidates: vec![
                    DecisionCandidate {
                        job: JobId(3),
                        local: false,
                        tau: Some(0.25),
                        eta_fairness: Some(1.5),
                        eta_locality: Some(1.0),
                        probability: 0.75,
                    },
                    DecisionCandidate {
                        job: JobId(4),
                        local: true,
                        tau: None,
                        eta_fairness: None,
                        eta_locality: None,
                        probability: 0.25,
                    },
                ],
            },
            SimEvent::JobCompleted { job: JobId(3) },
            SimEvent::RunFinished {
                drained: true,
                total_energy_joules: 999.125,
                total_tasks: 12,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let at = SimTime::from_millis(1000 * i as u64 + 1);
            let line = trace_line(at, &event);
            let (at2, event2) = parse_trace_line(&line).unwrap_or_else(|e| {
                panic!("parse failed for {line}: {e}");
            });
            assert_eq!(at2, at, "timestamp of {line}");
            assert_eq!(event2, event, "payload of {line}");
        }
    }

    #[test]
    fn lines_have_the_canonical_envelope() {
        let line = trace_line(
            SimTime::from_millis(2500),
            &SimEvent::JobCompleted { job: JobId(9) },
        );
        assert_eq!(line, r#"{"at":2500,"type":"job_completed","job":9}"#);
    }

    #[test]
    fn sink_writes_one_line_per_event_and_flushes() {
        let mut sink = JsonlTraceSink::new(Vec::new());
        for (i, event) in sample_events().into_iter().enumerate() {
            sink.on_event(SimTime::from_secs(i as u64), &event);
        }
        assert_eq!(sink.lines(), 19);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 19);
        for line in text.lines() {
            parse_trace_line(line).unwrap();
        }
    }

    #[test]
    fn sink_retains_the_first_io_error() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTraceSink::new(Failing);
        sink.on_event(SimTime::ZERO, &SimEvent::JobCompleted { job: JobId(0) });
        sink.on_event(SimTime::ZERO, &SimEvent::JobCompleted { job: JobId(1) });
        assert_eq!(sink.lines(), 0);
        assert!(sink.finish().is_err());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "{}",
            r#"{"at":1}"#,
            r#"{"at":1,"type":"no_such_event"}"#,
            r#"{"at":1,"type":"job_completed"}"#,
            r#"{"at":1,"type":"task_started","task":{"job":0,"kind":"walk","index":0},"machine":0,"speculative":false}"#,
            r#"{"at":1,"type":"assignment_decision","machine":0,"kind":"map","chosen":0,"candidates":7}"#,
            r#"{"at":1,"type":"assignment_decision","machine":0,"kind":"map","chosen":0,"candidates":[{"job":0}]}"#,
        ] {
            assert!(parse_trace_line(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn reader_pinpoints_malformed_and_truncated_lines() {
        let good = trace_line(
            SimTime::from_secs(1),
            &SimEvent::JobCompleted { job: JobId(0) },
        );

        // A field error mid-file: the message names the line and echoes it.
        let text = format!("{good}\n\n{{\"at\":2,\"type\":\"job_completed\"}}\n");
        let err = read_trace_lines(io::Cursor::new(text)).unwrap_err();
        assert!(err.starts_with("line 3:"), "wrong location: {err}");
        assert!(
            err.contains("\"job\"") && err.contains("offending line:"),
            "unhelpful error: {err}"
        );

        // A trace truncated mid-line (killed writer): same treatment, and
        // an over-long snippet is bounded.
        let truncated = format!("{good}\n{}", &good[..good.len() - 4]);
        let err = read_trace_lines(io::Cursor::new(truncated)).unwrap_err();
        assert!(err.starts_with("line 2:"), "wrong location: {err}");

        let long = format!(
            r#"{{"at":1,"type":"energy_model_refit","profile":"{}""#,
            "x".repeat(500)
        );
        let err = read_trace_lines(io::Cursor::new(long)).unwrap_err();
        assert!(
            err.contains("[") && err.contains("bytes total]"),
            "snippet unbounded: {err}"
        );

        // Blank lines and a trailing newline are fine.
        let text = format!("\n{good}\n\n");
        let parsed = read_trace_lines(io::Cursor::new(text)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 2, "line numbers must survive blank lines");
    }
}
