//! Deterministic future-event list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A deterministic priority queue of timestamped events.
///
/// Events pop in nondecreasing timestamp order. Two events scheduled for the
/// same instant pop in the order they were scheduled (FIFO tie-break via a
/// monotonically increasing sequence number), which keeps simulation runs
/// bit-for-bit reproducible for a given seed.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), 'b');
/// q.schedule(SimTime::from_secs(1), 'c');
/// q.schedule(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    last_popped: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// Scheduling into the past (before the timestamp of the last popped
    /// event) is tolerated: the event fires "now" relative to queue order,
    /// preserving monotonic pops. This mirrors how heartbeat-driven
    /// simulators deal with zero-latency reactions.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.last_popped);
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event together with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.last_popped = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event — i.e. "now".
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(2), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_secs(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(10));
        // Scheduling before `now` fires at `now`, not in the past.
        q.schedule(SimTime::from_secs(2), "clamped");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(e, "clamped");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(4), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
