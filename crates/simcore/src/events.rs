//! Deterministic future-event list.
//!
//! Implemented as a calendar (bucket-wheel) queue: the near future is a
//! ring of fixed-width time buckets drained in order, and everything past
//! the wheel's horizon waits in a far-future binary heap until the wheel
//! rotates under it. Scheduling into the wheel is O(1); popping sorts one
//! bucket at a time, so the amortized cost per event is O(log bucket)
//! instead of O(log queue) — at fleet scale the queue holds one pending
//! heartbeat per machine plus every in-flight task, and the heap's global
//! reordering was a measurable share of the event loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Width of one calendar bucket. 256 ms subdivides the 3 s default
/// heartbeat ~12×, so a staggered heartbeat round spreads across buckets
/// instead of piling into one.
const BUCKET_WIDTH_MS: u64 = 256;
/// Number of buckets on the wheel: a horizon of 4096 × 256 ms ≈ 17.5 min,
/// which covers heartbeats, control intervals and all but the longest task
/// completions; anything further out takes the overflow heap.
const NUM_BUCKETS: usize = 4096;

/// A deterministic priority queue of timestamped events.
///
/// Events pop in nondecreasing timestamp order. Two events scheduled for the
/// same instant pop in the order they were scheduled (FIFO tie-break via a
/// monotonically increasing sequence number), which keeps simulation runs
/// bit-for-bit reproducible for a given seed.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), 'b');
/// q.schedule(SimTime::from_secs(1), 'c');
/// q.schedule(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The ring: slot `b % NUM_BUCKETS` holds bucket `b` for absolute
    /// bucket indices in `[cursor, cursor + NUM_BUCKETS)`. Unsorted;
    /// sorted once when the bucket is opened for draining.
    wheel: Vec<Vec<Entry<E>>>,
    /// Events pending on the wheel (excludes `current` and `overflow`).
    wheel_len: usize,
    /// Absolute index of the next bucket to open. All buckets below the
    /// cursor are drained (except the one still draining via `current`).
    cursor: u64,
    /// The opened bucket, sorted by `(at, seq)` *descending* so draining is
    /// `Vec::pop`. Same-instant reactions land here via sorted insert.
    current: Vec<Entry<E>>,
    /// Events beyond the wheel horizon, migrated in as the wheel rotates.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    last_popped: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Absolute calendar bucket of a timestamp.
fn bucket_of(at: SimTime) -> u64 {
    at.as_millis() / BUCKET_WIDTH_MS
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: std::iter::repeat_with(Vec::new).take(NUM_BUCKETS).collect(),
            wheel_len: 0,
            cursor: 0,
            current: Vec::new(),
            overflow: BinaryHeap::new(),
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// Scheduling at exactly the timestamp of the last popped event is the
    /// documented "fires now" behaviour: the event joins the current
    /// instant in FIFO order, which is how heartbeat-driven simulators
    /// express zero-latency reactions. Scheduling *strictly before* the
    /// last popped timestamp is a logic error in the caller — it would
    /// silently reorder history — and debug-asserts; release builds keep
    /// the old clamp-to-now tolerance.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "scheduled an event at {at} strictly before the last popped \
             timestamp {}; schedule at or after it",
            self.last_popped
        );
        let at = at.max(self.last_popped);
        let entry = Entry {
            at,
            seq: self.seq,
            event,
        };
        self.seq += 1;

        let bucket = bucket_of(at);
        if bucket < self.cursor {
            // The event belongs to the bucket being drained (it cannot be
            // older: `at >= last_popped`). Its seq is the largest yet, so
            // among equal timestamps it sorts last — i.e. first from the
            // back of the descending-sorted vec after everything earlier.
            let idx = self.current.partition_point(|e| e.at > at);
            self.current.insert(idx, entry);
        } else if bucket - self.cursor < NUM_BUCKETS as u64 {
            self.wheel[(bucket % NUM_BUCKETS as u64) as usize].push(entry);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Removes and returns the earliest event together with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() {
            self.open_next_bucket();
        }
        let entry = self.current.pop()?;
        self.last_popped = entry.at;
        Some((entry.at, entry.event))
    }

    /// Rotates the wheel forward to the next non-empty bucket, migrating
    /// overflow events that the new window now covers, and sorts that
    /// bucket into `current` for draining.
    fn open_next_bucket(&mut self) {
        if self.wheel_len == 0 {
            // Fast-forward an empty wheel straight to the overflow's first
            // bucket so migration below can land it on the ring.
            let Some(Reverse(first)) = self.overflow.peek() else {
                return;
            };
            self.cursor = self.cursor.max(bucket_of(first.at));
        }
        self.migrate_overflow();
        debug_assert!(self.wheel_len > 0, "migration must populate the wheel");
        for _ in 0..NUM_BUCKETS {
            let slot = (self.cursor % NUM_BUCKETS as u64) as usize;
            if !self.wheel[slot].is_empty() {
                self.current = std::mem::take(&mut self.wheel[slot]);
                self.wheel_len -= self.current.len();
                // Descending, so draining in (at, seq) order is Vec::pop.
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.cursor += 1;
                self.migrate_overflow();
                return;
            }
            // Only advance (and widen the migration window) once the slot
            // is known empty: migrating first could drop a bucket one
            // horizon ahead into the very slot about to be opened.
            self.cursor += 1;
            self.migrate_overflow();
        }
        unreachable!("wheel_len > 0 but no bucket within the window is non-empty");
    }

    /// Moves overflow events whose bucket the window `[cursor,
    /// cursor + NUM_BUCKETS)` now covers onto the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(first)) = self.overflow.peek() {
            let bucket = bucket_of(first.at);
            if bucket - self.cursor >= NUM_BUCKETS as u64 {
                break;
            }
            let Some(Reverse(entry)) = self.overflow.pop() else {
                unreachable!("peeked entry vanished");
            };
            self.wheel[(bucket % NUM_BUCKETS as u64) as usize].push(entry);
            self.wheel_len += 1;
        }
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.last() {
            return Some(e.at);
        }
        // Scan the window in bucket order; the first non-empty bucket
        // holds the minimum (buckets partition the time axis). The bucket
        // itself is unsorted, so take its min key.
        let mut remaining = self.wheel_len;
        for k in 0..NUM_BUCKETS as u64 {
            if remaining == 0 {
                break;
            }
            let slot = &self.wheel[((self.cursor + k) % NUM_BUCKETS as u64) as usize];
            if let Some(min) = slot.iter().map(|e| e.at).min() {
                return Some(min);
            }
            remaining -= slot.len();
        }
        self.overflow.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.current.len() + self.wheel_len + self.overflow.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timestamp of the most recently popped event — i.e. "now".
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(2), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_secs(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// The documented "fires now" tolerance: scheduling at exactly the
    /// last popped timestamp enqueues the event at the current instant —
    /// it pops before any later-timestamped event, in FIFO order among
    /// same-instant events.
    #[test]
    fn scheduling_at_now_fires_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "tick");
        q.schedule(SimTime::from_secs(11), "later");
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), "tick"));
        q.schedule(SimTime::from_secs(10), "reaction");
        q.schedule(SimTime::from_secs(10), "second reaction");
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), "reaction"));
        assert_eq!(
            q.pop().unwrap(),
            (SimTime::from_secs(10), "second reaction")
        );
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(11), "later"));
    }

    /// Scheduling strictly before the last popped timestamp is a caller
    /// bug, not a tolerated input: it trips the debug assertion instead of
    /// silently reordering.
    #[test]
    #[should_panic(expected = "strictly before the last popped")]
    #[cfg(debug_assertions)]
    fn scheduling_strictly_in_the_past_debug_asserts() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.pop();
        q.schedule(SimTime::from_secs(2), "past");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_sees_through_every_layer() {
        let mut q = EventQueue::new();
        // Overflow only.
        let far = SimTime::from_millis(BUCKET_WIDTH_MS * (NUM_BUCKETS as u64 + 10));
        q.schedule(far, "far");
        assert_eq!(q.peek_time(), Some(far));
        // Wheel beats overflow.
        q.schedule(SimTime::from_secs(9), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        // An opened bucket (current) beats the wheel.
        assert_eq!(q.pop().unwrap().1, "near");
        q.schedule(SimTime::from_secs(9), "same instant");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(4), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    /// Events past the wheel horizon take the overflow heap and come back
    /// in order as the wheel rotates under them — including several
    /// horizon-lengths out, which forces repeated migration.
    #[test]
    fn overflow_events_migrate_back_in_order() {
        let horizon = SimDuration::from_millis(BUCKET_WIDTH_MS * NUM_BUCKETS as u64);
        let mut q = EventQueue::new();
        let times: Vec<SimTime> = (0..6u64)
            .map(|k| SimTime::ZERO + horizon * k + SimDuration::from_secs(k + 1))
            .collect();
        // Schedule far-to-near so every far event enters via the overflow.
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule(t, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
        assert!(q.pop().is_none());
    }

    /// Same-instant events spread across the wheel/overflow boundary keep
    /// global FIFO order by sequence number.
    #[test]
    fn overflow_ties_keep_fifo_with_wheel() {
        let far = SimTime::from_millis(BUCKET_WIDTH_MS * (NUM_BUCKETS as u64 * 2));
        let mut q = EventQueue::new();
        q.schedule(far, 0u32); // overflow (beyond horizon from cursor 0)
        q.schedule(SimTime::from_secs(1), 100);
        q.schedule(far, 1); // still overflow
        assert_eq!(q.pop().unwrap().1, 100);
        // Still beyond the rotated wheel's horizon: joins the same bucket
        // through the overflow with a later sequence number.
        q.schedule(far, 2);
        assert_eq!(q.pop().unwrap(), (far, 0));
        assert_eq!(q.pop().unwrap(), (far, 1));
        assert_eq!(q.pop().unwrap(), (far, 2));
    }
}
