//! Discrete-event simulation core for the E-Ant reproduction.
//!
//! This crate provides the building blocks every other crate in the workspace
//! rests on:
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution simulated time with
//!   total ordering and saturating arithmetic.
//! * [`EventQueue`] — a deterministic future-event list. Ties on the timestamp
//!   are broken by insertion sequence so that two runs with the same seed
//!   replay identically.
//! * [`SimRng`] — a seedable, splittable random number generator. Every
//!   stochastic component in the simulator draws from a stream forked off a
//!   single root seed, which makes whole-cluster experiments reproducible.
//! * [`stats`] — online statistics (Welford mean/variance), NRMSE (the
//!   accuracy metric used by the paper's Figure 4), percentiles and
//!   histograms.
//! * [`series`] — time-series recording used by the figure generators.
//! * [`trace`] — a typed event-stream layer: the [`trace::Observer`]
//!   contract, [`trace::ObserverSet`] fan-out with a zero-cost empty path,
//!   and a bounded [`trace::RingRecorder`].
//!
//! # Examples
//!
//! Run a tiny simulation that schedules two events and drains them in order:
//!
//! ```
//! use simcore::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(5), "second");
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(1), "first");
//!
//! let (t1, e1) = queue.pop().unwrap();
//! assert_eq!(e1, "first");
//! assert_eq!(t1.as_secs_f64(), 1.0);
//! let (_, e2) = queue.pop().unwrap();
//! assert_eq!(e2, "second");
//! assert!(queue.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod events;
mod rng;
pub mod series;
pub mod stats;
mod time;
pub mod trace;

pub use events::EventQueue;
pub use rng::{fnv1a_64, SimRng};
pub use time::{SimDuration, SimTime};
