//! Deterministic, splittable random number generation.
//!
//! The generator is a vendored **xoshiro256++** (Blackman & Vigna, 2018)
//! seeded through **SplitMix64**, the combination recommended by the
//! algorithm's authors. Vendoring it (rather than depending on the `rand`
//! crate) keeps the workspace hermetic — the default feature set builds with
//! no external crates and no registry access — and freezes the bit-exact
//! stream the golden-value regression tests depend on.
//!
//! Statistical caveats: xoshiro256++ passes BigCrush and PractRand but is
//! not cryptographically secure, and its 256-bit state means `2^128`
//! non-overlapping subsequences in theory; we derive child streams by
//! *reseeding* through SplitMix64 (see [`SimRng::fork`]) rather than using
//! jump polynomials, which is ample for the stream counts a simulation run
//! creates and keeps forking O(1) and label-addressable.

/// The raw xoshiro256++ engine: 256 bits of state, 64-bit output.
///
/// Reference: <https://prng.di.unimi.it/xoshiro256plusplus.c> (public
/// domain / CC0). The update and output functions below are a line-for-line
/// transcription of the reference C implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state from a 64-bit seed by iterating
    /// SplitMix64, as recommended by the xoshiro authors. SplitMix64's
    /// outputs are equidistributed over `u64`, so the all-zero state (the
    /// one invalid xoshiro state) cannot be produced from any seed.
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64_mix(x);
        }
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seedable random number generator for simulation components.
///
/// `SimRng` wraps a vendored xoshiro256++ engine and adds two things the
/// simulator needs:
///
/// * **stream forking** — [`SimRng::fork`] derives an independent child
///   stream from a parent seed and a label, so each machine / job / noise
///   source gets its own deterministic stream regardless of the order in
///   which other components consume randomness;
/// * **domain helpers** — exponential and bounded-normal draws used by
///   arrival processes and service-time noise, implemented here once so
///   distribution parameters are validated in a single place.
///
/// # Examples
///
/// ```
/// use simcore::SimRng;
///
/// let mut root = SimRng::seed_from(42);
/// let mut a = root.fork("machine-0");
/// let mut b = root.fork("machine-1");
/// // Independent streams: the same draws differ across forks but are stable
/// // across runs.
/// assert_ne!(a.uniform_f64(), b.uniform_f64());
/// let mut root2 = SimRng::seed_from(42);
/// let mut a2 = root2.fork("machine-0");
/// let _ = root2.fork("machine-1");
/// // Skip one draw on `a` replays identically on `a2`.
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child seed is a hash of the parent seed and the label, so forking
    /// the same label from the same parent always yields the same stream,
    /// independent of how much randomness the parent has already consumed.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed via splitmix64.
        let child = splitmix64(self.seed ^ fnv1a_64(label.as_bytes()));
        SimRng::seed_from(child)
    }

    /// Derives an independent child stream identified by an index.
    pub fn fork_index(&self, label: &str, index: usize) -> SimRng {
        self.fork(&format!("{label}#{index}"))
    }

    /// The next raw 64-bit output of the underlying engine.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform draw in `[0, 1)`.
    ///
    /// Uses the top 53 bits of the engine output, so every representable
    /// value is a multiple of 2⁻⁵³ — the standard double-precision
    /// conversion, identical across platforms.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + (hi - lo) * self.uniform_f64()
    }

    /// A uniform integer draw in `[lo, hi]` inclusive.
    ///
    /// Unbiased via Lemire's widening-multiply rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Lemire (2019): multiply a 64-bit draw by n and keep the high word;
        // reject the small biased band of low products.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// An exponential draw with the given rate (events per unit time).
    ///
    /// Used for Poisson arrival processes. Returns the inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        let u = 1.0 - self.uniform_f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// A normal draw with mean `mean` and standard deviation `std_dev`,
    /// clamped to `[lo, hi]`.
    ///
    /// Service-time and utilization noise must stay within physical bounds;
    /// clamping (rather than rejection sampling) keeps the draw O(1).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or `lo > hi`.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        assert!(lo <= hi, "invalid clamp range");
        if std_dev == 0.0 {
            return mean.clamp(lo, hi);
        }
        // Box–Muller transform.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std_dev * z).clamp(lo, hi)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an index from a slice of non-negative weights.
    ///
    /// Returns `None` if the slice is empty or the total weight is zero or
    /// non-finite. This is the primitive behind the ACO probabilistic path
    /// choice (paper Eq. 3 / Eq. 8).
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if weights.is_empty() || total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.uniform_f64() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                continue;
            }
            last_positive = Some(i);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive-weight entry.
        last_positive
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            items.swap(i, j);
        }
    }
}

/// One full SplitMix64 step: advance `x` by the golden-gamma increment and
/// return the mixed output. Also used to derive fork seeds.
fn splitmix64(x: u64) -> u64 {
    splitmix64_mix(x.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// The SplitMix64 output (finalization) function applied to an
/// already-incremented state word.
fn splitmix64_mix(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit digest: the repository's one content hash, used for fork
/// labels here and (via `metrics::spec`) run-database manifest keys and
/// golden trace digests. Stable across platforms and releases by
/// construction — the pinned vectors below are part of the public contract.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The xoshiro256++ reference implementation, state {1, 2, 3, 4},
    /// produces this exact sequence (first values of the canonical C code).
    /// Guards the vendored transcription against typos.
    #[test]
    fn xoshiro_reference_vectors() {
        let mut engine = Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(engine.next_u64(), e);
        }
    }

    /// FNV-1a 64 reference vectors from the original Fowler/Noll/Vo
    /// publication: the offset basis (empty input) and two short strings.
    /// Fork-label derivation, manifest keys and the golden trace digests
    /// all ride on these exact constants.
    #[test]
    fn fnv1a_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    /// SplitMix64 reference vectors: seed 0 and the widely published
    /// sequence for seed 0x9E3779B97F4A7C15-free state 1234567.
    #[test]
    fn splitmix_reference_vectors() {
        // From the reference C implementation with x = 0: first three
        // outputs.
        let mut x = 0u64;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64_mix(x)
        };
        assert_eq!(next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let root1 = SimRng::seed_from(11);
        let mut root2 = SimRng::seed_from(11);
        let _ = root2.next_u64(); // consume from root2 before forking
        let mut f1 = root1.fork("x");
        let mut f2 = root2.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn different_labels_differ() {
        let root = SimRng::seed_from(3);
        let mut a = root.fork("a");
        let mut b = root.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_index_distinct() {
        let root = SimRng::seed_from(3);
        let mut a = root.fork_index("m", 0);
        let mut b = root.fork_index("m", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..10_000 {
            let v = rng.uniform_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = SimRng::seed_from(21);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean was {mean}");
    }

    #[test]
    fn uniform_u64_covers_inclusive_range() {
        let mut rng = SimRng::seed_from(13);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range must appear");
        assert_eq!(rng.uniform_u64(3, 3), 3);
    }

    #[test]
    fn uniform_u64_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(17);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.uniform_u64(0, 7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = f64::from(c) / f64::from(n);
            assert!((frac - 0.125).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn uniform_u64_full_range_does_not_hang() {
        let mut rng = SimRng::seed_from(19);
        let _ = rng.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from(5);
        let rate = 4.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1000 {
            let v = rng.normal_clamped(0.5, 0.4, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn normal_zero_std_returns_clamped_mean() {
        let mut rng = SimRng::seed_from(9);
        assert_eq!(rng.normal_clamped(5.0, 0.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SimRng::seed_from(1);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / 10_000.0;
        assert!((frac2 - 0.9).abs() < 0.02, "frac2 = {frac2}");
    }

    #[test]
    fn weighted_index_handles_degenerate_inputs() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[f64::NAN]), None);
        assert_eq!(rng.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(2);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        SimRng::seed_from(0).exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn uniform_range_rejects_inverted_bounds() {
        SimRng::seed_from(0).uniform_range(2.0, 1.0);
    }
}
