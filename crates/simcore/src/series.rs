//! Time-series recording for figure generation.

use crate::{SimDuration, SimTime};

/// An append-only series of `(time, value)` samples.
///
/// The experiment harness records quantities like cumulative energy or
/// pheromone mass over simulated time, then resamples or integrates them when
/// printing a figure.
///
/// # Examples
///
/// ```
/// use simcore::series::TimeSeries;
/// use simcore::SimTime;
///
/// let mut ts = TimeSeries::new("power_w");
/// ts.record(SimTime::ZERO, 100.0);
/// ts.record(SimTime::from_secs(10), 140.0);
/// assert_eq!(ts.len(), 2);
/// // Trapezoidal integral over [0, 10] s = (100+140)/2 * 10 = 1200 J.
/// assert!((ts.integrate() - 1200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The descriptive name of the series.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must be appended in nondecreasing time
    /// order; out-of-order samples are clamped to the last recorded time so
    /// the series stays monotone.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let at = match self.samples.last() {
            Some(&(last, _)) => at.max(last),
            None => at,
        };
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over `(time, value)` samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// The most recent value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Linear interpolation of the series at `at`.
    ///
    /// Outside the recorded range the series is extended flat (first/last
    /// value). Returns `None` when empty.
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        let first = self.samples.first()?;
        if at <= first.0 {
            return Some(first.1);
        }
        let last = self.samples.last()?;
        if at >= last.0 {
            return Some(last.1);
        }
        // Binary search for the surrounding pair.
        let idx = self.samples.partition_point(|&(t, _)| t <= at);
        let (t0, v0) = self.samples[idx - 1];
        let (t1, v1) = self.samples[idx];
        if t1 == t0 {
            return Some(v1);
        }
        let frac = (at - t0).as_secs_f64() / (t1 - t0).as_secs_f64();
        Some(v0 + (v1 - v0) * frac)
    }

    /// Trapezoidal integral of the series over its full recorded range, with
    /// time in seconds. Integrating a power series in watts yields joules.
    pub fn integrate(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| {
                let (t0, v0) = w[0];
                let (t1, v1) = w[1];
                (v0 + v1) / 2.0 * (t1 - t0).as_secs_f64()
            })
            .sum()
    }

    /// A copy of the series keeping only the samples at or before `until`
    /// (the flight-recorder slice: everything the series knew at that
    /// instant, nothing recorded after it).
    pub fn sliced_until(&self, until: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            samples: self
                .samples
                .iter()
                .copied()
                .take_while(|&(t, _)| t <= until)
                .collect(),
        }
    }

    /// Resamples the series at a fixed period, producing `(time, value)`
    /// points from the first to the last sample inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn resample(&self, period: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!period.is_zero(), "resample period must be positive");
        let (Some(&(start, _)), Some(&(end, _))) = (self.samples.first(), self.samples.last())
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += period;
        }
        if out.last().map(|&(t, _)| t) != Some(end) {
            if let Some(v) = self.value_at(end) {
                out.push((end, v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("test");
        ts.record(SimTime::from_secs(0), 0.0);
        ts.record(SimTime::from_secs(10), 10.0);
        ts.record(SimTime::from_secs(20), 0.0);
        ts
    }

    #[test]
    fn name_and_len() {
        let ts = series();
        assert_eq!(ts.name(), "test");
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }

    #[test]
    fn interpolation_inside_and_outside() {
        let ts = series();
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(5.0));
        assert_eq!(ts.value_at(SimTime::from_secs(15)), Some(5.0));
        // Flat extension.
        assert_eq!(ts.value_at(SimTime::from_secs(100)), Some(0.0));
        assert_eq!(ts.value_at(SimTime::ZERO), Some(0.0));
    }

    #[test]
    fn empty_series_interpolates_none() {
        let ts = TimeSeries::new("empty");
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.last_value(), None);
        assert_eq!(ts.integrate(), 0.0);
    }

    #[test]
    fn integral_is_trapezoidal() {
        let ts = series();
        // Triangle of height 10 over 20 s → area 100.
        assert!((ts.integrate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_record_clamps() {
        let mut ts = TimeSeries::new("clamp");
        ts.record(SimTime::from_secs(10), 1.0);
        ts.record(SimTime::from_secs(5), 2.0);
        let samples: Vec<_> = ts.iter().collect();
        assert_eq!(samples[1].0, SimTime::from_secs(10));
        assert_eq!(ts.last_value(), Some(2.0));
    }

    #[test]
    fn sliced_until_keeps_the_prefix() {
        let ts = series();
        let cut = ts.sliced_until(SimTime::from_secs(10));
        assert_eq!(cut.name(), "test");
        assert_eq!(cut.len(), 2);
        assert_eq!(cut.last_value(), Some(10.0));
        assert!(ts.sliced_until(SimTime::ZERO).len() == 1);
        assert!(ts.sliced_until(SimTime::from_secs(99)).len() == 3);
    }

    #[test]
    fn resample_covers_range() {
        let ts = series();
        let pts = ts.resample(SimDuration::from_secs(5));
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (SimTime::ZERO, 0.0));
        assert_eq!(pts[4], (SimTime::from_secs(20), 0.0));
    }

    #[test]
    fn resample_appends_final_point() {
        let mut ts = TimeSeries::new("odd");
        ts.record(SimTime::from_secs(0), 0.0);
        ts.record(SimTime::from_secs(7), 7.0);
        let pts = ts.resample(SimDuration::from_secs(5));
        assert_eq!(pts.last().unwrap().0, SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "resample period must be positive")]
    fn resample_rejects_zero_period() {
        series().resample(SimDuration::ZERO);
    }
}
