//! Online and batch statistics used by the experiment harness.
//!
//! The paper evaluates its energy model with the *normalized root mean square
//! error* (NRMSE, Fig. 4) and job fairness as the *inverse of the variance of
//! per-job slowdown* (§VI-D). Both live here, alongside a Welford-style
//! online accumulator used by metrics collection.

/// Incremental mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation. Non-finite values are ignored (and counted
    /// nowhere), because a single NaN would otherwise poison a whole run's
    /// metrics.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (dividing by `n`); zero when fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by `n - 1`); zero when fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Normalized root mean square error between `actual` and `estimated`,
/// normalized by the range (max − min) of the actual values — the metric the
/// paper reports for its energy model (Fig. 4).
///
/// Returns `None` if the slices differ in length, are empty, or the actual
/// values have zero range (normalization undefined).
///
/// # Examples
///
/// ```
/// use simcore::stats::nrmse;
///
/// let actual = [10.0, 20.0, 30.0];
/// let exact = nrmse(&actual, &actual).unwrap();
/// assert_eq!(exact, 0.0);
/// ```
pub fn nrmse(actual: &[f64], estimated: &[f64]) -> Option<f64> {
    if actual.len() != estimated.len() || actual.is_empty() {
        return None;
    }
    let n = actual.len() as f64;
    let mse: f64 = actual
        .iter()
        .zip(estimated)
        .map(|(a, e)| (a - e).powi(2))
        .sum::<f64>()
        / n;
    let (lo, hi) = actual
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let range = hi - lo;
    if range <= 0.0 || !range.is_finite() {
        return None;
    }
    Some(mse.sqrt() / range)
}

/// Normalized root mean square error with the RMSE normalized by the mean
/// of the actual values — the standard alternative normalization, more
/// stable than range normalization when the actual series is nearly flat.
///
/// Returns `None` for mismatched/empty inputs or a non-positive mean.
///
/// # Examples
///
/// ```
/// use simcore::stats::nrmse_mean;
///
/// let actual = [10.0, 10.0, 10.0];
/// let est = [9.0, 10.0, 11.0];
/// // RMSE = sqrt(2/3), mean = 10.
/// assert!((nrmse_mean(&actual, &est).unwrap() - (2.0f64 / 3.0).sqrt() / 10.0).abs() < 1e-12);
/// ```
pub fn nrmse_mean(actual: &[f64], estimated: &[f64]) -> Option<f64> {
    if actual.len() != estimated.len() || actual.is_empty() {
        return None;
    }
    let n = actual.len() as f64;
    let mse: f64 = actual
        .iter()
        .zip(estimated)
        .map(|(a, e)| (a - e).powi(2))
        .sum::<f64>()
        / n;
    let mean = actual.iter().sum::<f64>() / n;
    if mean <= 0.0 || !mean.is_finite() {
        return None;
    }
    Some(mse.sqrt() / mean)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a data set, by linear interpolation.
///
/// Returns `None` when the data is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Ordinary least squares fit `y ≈ a + b·x`, returning `(a, b)`.
///
/// This is the "standard system identification technique" the paper uses to
/// identify the power-model slope α from (utilization, power) samples
/// (§IV-B). Returns `None` when fewer than two distinct x values exist.
///
/// # Examples
///
/// ```
/// use simcore::stats::least_squares;
///
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let (a, b) = least_squares(&xs, &ys).unwrap();
/// assert!((a - 1.0).abs() < 1e-12);
/// assert!((b - 2.0).abs() < 1e-12);
/// ```
pub fn least_squares(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let b = sxy / sxx;
    let a = mean_y - b * mean_x;
    Some((a, b))
}

/// Jain's fairness index over a set of non-negative allocations.
///
/// `1.0` is perfectly fair; `1/n` is maximally unfair. Used as a secondary
/// fairness check alongside the paper's inverse-slowdown-variance metric.
pub fn jain_fairness(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let sum: f64 = values.iter().sum();
    let sq_sum: f64 = values.iter().map(|v| v * v).sum();
    if sq_sum <= 0.0 {
        return None;
    }
    Some(sum * sum / (values.len() as f64 * sq_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.sum(), 4.0);
        assert!((s.population_variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn nrmse_zero_for_exact_estimate() {
        let a = [1.0, 5.0, 3.0];
        assert_eq!(nrmse(&a, &a), Some(0.0));
    }

    #[test]
    fn nrmse_known_value() {
        let actual = [0.0, 10.0];
        let est = [1.0, 9.0];
        // RMSE = 1, range = 10 → 0.1
        assert!((nrmse(&actual, &est).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn nrmse_rejects_degenerate() {
        assert_eq!(nrmse(&[], &[]), None);
        assert_eq!(nrmse(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(nrmse(&[2.0, 2.0], &[1.0, 3.0]), None); // zero range
    }

    #[test]
    fn nrmse_mean_stable_on_flat_series() {
        let actual = [10.0, 10.0];
        let est = [10.0, 10.0];
        assert_eq!(nrmse_mean(&actual, &est), Some(0.0));
        // Range normalization would be undefined here.
        assert_eq!(nrmse(&actual, &est), None);
        assert_eq!(nrmse_mean(&[], &[]), None);
        assert_eq!(nrmse_mean(&[0.0], &[1.0]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(quantile(&data, 2.0), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn least_squares_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 40.0 + 1.2 * x).collect();
        let (a, b) = least_squares(&xs, &ys).unwrap();
        assert!((a - 40.0).abs() < 1e-9);
        assert!((b - 1.2).abs() < 1e-9);
    }

    #[test]
    fn least_squares_rejects_constant_x() {
        assert_eq!(least_squares(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(least_squares(&[1.0], &[2.0]), None);
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[1.0, 1.0, 1.0]), Some(1.0));
        let unfair = jain_fairness(&[1.0, 0.0, 0.0]).unwrap();
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0.0]), None);
    }
}
