//! Simulated time and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, measured in whole milliseconds since the start
/// of the simulation.
///
/// `SimTime` is a newtype over `u64` so it cannot be confused with a
/// [`SimDuration`] or a raw counter. Arithmetic with durations is provided via
/// operator overloads; subtracting two `SimTime`s yields a `SimDuration` and
/// saturates at zero rather than panicking, because schedulers routinely ask
/// "how long ago" about events that raced with the query.
///
/// # Examples
///
/// ```
/// use simcore::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_millis(), 90_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(90));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in whole milliseconds.
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
///
/// let d = SimDuration::from_mins(5);
/// assert_eq!(d.as_secs_f64(), 300.0);
/// assert_eq!(d * 2, SimDuration::from_mins(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Creates a time point `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Minutes since the origin, as a float. Figure generators report in
    /// minutes because the paper does.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// The elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two time points.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration in minutes, as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl From<u64> for SimDuration {
    fn from(millis: u64) -> Self {
        SimDuration(millis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
    }

    #[test]
    fn time_sub_time_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late - early, SimDuration::from_secs(1));
        assert_eq!(early - late, SimDuration::ZERO);
    }

    #[test]
    fn time_sub_duration_saturates() {
        let t = SimTime::from_secs(1);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0005).as_millis(), 1);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_millis(), 2500);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(4);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d * 0.5, SimDuration::from_secs(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn minutes_conversion() {
        assert_eq!(SimDuration::from_mins(5).as_mins_f64(), 5.0);
        assert_eq!(SimTime::from_secs(120).as_mins_f64(), 2.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
