//! Typed simulation event stream: observers, fan-out and recording.
//!
//! The engine layers above `simcore` each define their own concrete event
//! vocabulary (an enum `E`); this module provides the generic plumbing to
//! watch such a stream without coupling the producer to any consumer:
//!
//! * [`Observer`] — the consumer contract: one callback per event, with
//!   the simulation timestamp. Observers are **passive**: they receive
//!   shared references and must not influence the simulation (in
//!   particular they own no RNG stream), so a run with observers attached
//!   is bit-identical to one without.
//! * [`ObserverSet`] — an ordered fan-out of boxed observers with a
//!   statically-elidable fast path: [`ObserverSet::emit`] takes the event
//!   as a *closure*, so when no observer is attached the event payload is
//!   never even constructed and the whole call inlines down to one
//!   `Vec::is_empty` branch.
//! * [`RingRecorder`] — a bounded in-memory recorder keeping the last `N`
//!   events (the "flight recorder" pattern for post-mortem debugging).
//! * [`SharedObserver`] — a cheaply clonable `Rc<RefCell<T>>` handle so a
//!   caller can attach an observer to one or more producers *and* keep
//!   access to it after the run.
//!
//! # Examples
//!
//! ```
//! use simcore::trace::{Observer, ObserverSet, RingRecorder, SharedObserver};
//! use simcore::SimTime;
//!
//! #[derive(Clone, Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let recorder = SharedObserver::new(RingRecorder::new(8));
//! let mut set: ObserverSet<Ev> = ObserverSet::new();
//! set.attach(Box::new(recorder.clone()));
//! set.emit(SimTime::from_secs(1), || Ev::Tick(7));
//! recorder.with(|r| assert_eq!(r.events()[0], (SimTime::from_secs(1), Ev::Tick(7))));
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::SimTime;

/// A consumer of a typed event stream.
///
/// Implementations must be passive: `on_event` receives a shared reference
/// and must not feed anything back into the producer, so attaching or
/// detaching observers never changes what a deterministic simulation
/// computes.
pub trait Observer<E> {
    /// Called once per emitted event, in emission order, with the
    /// simulation time at which the event occurred.
    fn on_event(&mut self, at: SimTime, event: &E);
}

/// An ordered fan-out of boxed [`Observer`]s over one event type.
///
/// The common case is an empty set: [`ObserverSet::emit`] takes the event
/// as a closure and returns before constructing it when nobody listens,
/// so producers can emit unconditionally on hot paths.
pub struct ObserverSet<E> {
    observers: Vec<Box<dyn Observer<E>>>,
}

impl<E> std::fmt::Debug for ObserverSet<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSet")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<E> Default for ObserverSet<E> {
    fn default() -> Self {
        ObserverSet::new()
    }
}

impl<E> ObserverSet<E> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ObserverSet {
            observers: Vec::new(),
        }
    }

    /// Attaches an observer; it will see every subsequent emission, after
    /// all previously attached observers.
    pub fn attach(&mut self, observer: Box<dyn Observer<E>>) {
        self.observers.push(observer);
    }

    /// Whether no observer is attached (the fast-path condition).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Emits one event, constructing it lazily: `event` is only invoked
    /// when at least one observer is attached.
    #[inline]
    pub fn emit(&mut self, at: SimTime, event: impl FnOnce() -> E) {
        if self.observers.is_empty() {
            return;
        }
        self.notify(at, &event());
    }

    /// Delivers an already-constructed event to every observer in
    /// attachment order. Use [`ObserverSet::emit`] on hot paths; this is
    /// the cold half, kept out of line so the emit fast path stays small.
    pub fn notify(&mut self, at: SimTime, event: &E) {
        for obs in &mut self.observers {
            obs.on_event(at, event);
        }
    }
}

/// A bounded in-memory event recorder: keeps the most recent `capacity`
/// events and counts how many older ones were dropped.
#[derive(Debug, Clone)]
pub struct RingRecorder<E> {
    capacity: usize,
    events: VecDeque<(SimTime, E)>,
    dropped: u64,
}

impl<E> RingRecorder<E> {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring recorder needs capacity > 0");
        RingRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<(SimTime, E)> {
        &self.events
    }

    /// Number of events evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events observed (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// Consumes the recorder, returning the retained events oldest first.
    pub fn into_events(self) -> Vec<(SimTime, E)> {
        self.events.into_iter().collect()
    }
}

impl<E: Clone> Observer<E> for RingRecorder<E> {
    fn on_event(&mut self, at: SimTime, event: &E) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event.clone()));
    }
}

/// An unbounded in-memory event recorder: keeps every observed event, in
/// order. The streaming counterpart to a producer-side accumulation flag —
/// attach one only at call sites that genuinely need the full per-event
/// history (use [`RingRecorder`] or a folding observer otherwise).
#[derive(Debug, Clone, Default)]
pub struct VecRecorder<E> {
    events: Vec<(SimTime, E)>,
}

impl<E> VecRecorder<E> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        VecRecorder { events: Vec::new() }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[(SimTime, E)] {
        &self.events
    }

    /// Consumes the recorder, returning the events oldest first.
    pub fn into_events(self) -> Vec<(SimTime, E)> {
        self.events
    }
}

impl<E: Clone> Observer<E> for VecRecorder<E> {
    fn on_event(&mut self, at: SimTime, event: &E) {
        self.events.push((at, event.clone()));
    }
}

/// A shared, clonable handle around an observer, so the same instance can
/// be attached to several producers (engine *and* scheduler, say) and
/// inspected after the run.
///
/// Single-threaded by construction (`Rc<RefCell<..>>`): simulation runs
/// own their observers; cross-run aggregation happens after the fact.
#[derive(Debug, Default)]
pub struct SharedObserver<T>(Rc<RefCell<T>>);

impl<T> SharedObserver<T> {
    /// Wraps `inner` in a shared handle.
    pub fn new(inner: T) -> Self {
        SharedObserver(Rc::new(RefCell::new(inner)))
    }

    /// Runs `f` with a shared borrow of the inner observer.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within the observer itself.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs `f` with a mutable borrow of the inner observer.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within the observer itself.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Unwraps the inner observer if this is the last handle, or returns
    /// `self` unchanged otherwise.
    pub fn try_into_inner(self) -> Result<T, Self> {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .map_err(SharedObserver)
    }
}

impl<T> Clone for SharedObserver<T> {
    fn clone(&self) -> Self {
        SharedObserver(Rc::clone(&self.0))
    }
}

impl<E, T: Observer<E>> Observer<E> for SharedObserver<T> {
    fn on_event(&mut self, at: SimTime, event: &E) {
        self.0.borrow_mut().on_event(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ev(u32);

    struct Counter(u64);
    impl Observer<Ev> for Counter {
        fn on_event(&mut self, _at: SimTime, _event: &Ev) {
            self.0 += 1;
        }
    }

    #[test]
    fn emit_skips_construction_when_empty() {
        let mut set: ObserverSet<Ev> = ObserverSet::new();
        let mut built = false;
        set.emit(SimTime::ZERO, || {
            built = true;
            Ev(1)
        });
        assert!(!built, "event must not be constructed without observers");
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn fan_out_preserves_attachment_order() {
        struct Tagger(SharedObserver<Vec<u32>>, u32);
        impl Observer<Ev> for Tagger {
            fn on_event(&mut self, _at: SimTime, _event: &Ev) {
                self.0.with_mut(|v| v.push(self.1));
            }
        }
        let log = SharedObserver::new(Vec::new());
        let mut set: ObserverSet<Ev> = ObserverSet::new();
        set.attach(Box::new(Tagger(log.clone(), 1)));
        set.attach(Box::new(Tagger(log.clone(), 2)));
        set.emit(SimTime::ZERO, || Ev(0));
        set.emit(SimTime::ZERO, || Ev(0));
        log.with(|v| assert_eq!(v, &[1, 2, 1, 2]));
    }

    #[test]
    fn ring_recorder_bounds_memory() {
        let mut r: RingRecorder<Ev> = RingRecorder::new(3);
        for i in 0..5 {
            r.on_event(SimTime::from_secs(i), &Ev(i as u32));
        }
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.seen(), 5);
        let kept: Vec<u32> = r.into_events().into_iter().map(|(_, e)| e.0).collect();
        assert_eq!(kept, [2, 3, 4]);
    }

    #[test]
    fn vec_recorder_keeps_everything() {
        let mut r: VecRecorder<Ev> = VecRecorder::new();
        for i in 0..5 {
            r.on_event(SimTime::from_secs(i), &Ev(i as u32));
        }
        assert_eq!(r.events().len(), 5);
        let kept: Vec<u32> = r.into_events().into_iter().map(|(_, e)| e.0).collect();
        assert_eq!(kept, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn shared_observer_attaches_to_many_sets() {
        let counter = SharedObserver::new(Counter(0));
        let mut a: ObserverSet<Ev> = ObserverSet::new();
        let mut b: ObserverSet<Ev> = ObserverSet::new();
        a.attach(Box::new(counter.clone()));
        b.attach(Box::new(counter.clone()));
        a.emit(SimTime::ZERO, || Ev(1));
        b.emit(SimTime::ZERO, || Ev(2));
        assert_eq!(counter.with(|c| c.0), 2);
        assert!(counter.try_into_inner().is_err(), "set still holds handles");
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_rejected() {
        let _ = RingRecorder::<Ev>::new(0);
    }
}
