//! Arrival processes for tasks and jobs.
//!
//! The motivation study (Fig. 1) drives single machines with a stream of
//! independent tasks at a controlled rate ("task arrival rate" on the
//! figures' x axes). This module provides the Poisson and deterministic
//! arrival generators behind those experiments.

use simcore::{SimDuration, SimRng, SimTime};

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Exponential gaps (memoryless Poisson process).
    Poisson,
    /// Fixed gaps of exactly `1/rate`.
    Deterministic,
}

/// A stream of arrival timestamps at a target rate.
///
/// # Examples
///
/// ```
/// use workload::arrival::{ArrivalKind, ArrivalProcess};
/// use simcore::{SimRng, SimTime, SimDuration};
///
/// // 12 tasks/min, deterministic: one arrival every 5 s.
/// let mut arr = ArrivalProcess::per_minute(12.0, ArrivalKind::Deterministic);
/// let mut rng = SimRng::seed_from(0);
/// let t1 = arr.next_arrival(&mut rng);
/// let t2 = arr.next_arrival(&mut rng);
/// assert_eq!(t2 - t1, SimDuration::from_secs(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    rate_per_sec: f64,
    kind: ArrivalKind,
    next_at: SimTime,
}

impl ArrivalProcess {
    /// Creates a process with `rate_per_min` arrivals per minute — the unit
    /// of the paper's Fig. 1 x axes.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn per_minute(rate_per_min: f64, kind: ArrivalKind) -> Self {
        assert!(
            rate_per_min.is_finite() && rate_per_min > 0.0,
            "arrival rate must be positive"
        );
        ArrivalProcess {
            rate_per_sec: rate_per_min / 60.0,
            kind,
            next_at: SimTime::ZERO,
        }
    }

    /// Target rate in arrivals per minute.
    pub fn rate_per_minute(&self) -> f64 {
        self.rate_per_sec * 60.0
    }

    /// Draws the next arrival timestamp (strictly after the previous one).
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        let gap_secs = match self.kind {
            ArrivalKind::Poisson => rng.exponential(self.rate_per_sec),
            ArrivalKind::Deterministic => 1.0 / self.rate_per_sec,
        };
        self.next_at += SimDuration::from_secs_f64(gap_secs.max(0.001));
        self.next_at
    }

    /// All arrivals up to `horizon`, from the current position.
    pub fn arrivals_until(&mut self, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_gaps_are_exact() {
        let mut arr = ArrivalProcess::per_minute(60.0, ArrivalKind::Deterministic);
        let mut rng = SimRng::seed_from(0);
        let times: Vec<SimTime> = (0..3).map(|_| arr.next_arrival(&mut rng)).collect();
        assert_eq!(times[0], SimTime::from_secs(1));
        assert_eq!(times[1], SimTime::from_secs(2));
        assert_eq!(times[2], SimTime::from_secs(3));
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut arr = ArrivalProcess::per_minute(30.0, ArrivalKind::Poisson);
        let mut rng = SimRng::seed_from(11);
        let horizon = SimTime::from_secs(60 * 200); // 200 minutes
        let arrivals = arr.arrivals_until(horizon, &mut rng);
        let rate = arrivals.len() as f64 / 200.0;
        assert!((rate - 30.0).abs() < 1.5, "observed rate {rate}/min");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut arr = ArrivalProcess::per_minute(600.0, ArrivalKind::Poisson);
        let mut rng = SimRng::seed_from(2);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let t = arr.next_arrival(&mut rng);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn arrivals_until_respects_horizon() {
        let mut arr = ArrivalProcess::per_minute(60.0, ArrivalKind::Deterministic);
        let mut rng = SimRng::seed_from(0);
        let arrivals = arr.arrivals_until(SimTime::from_secs(10), &mut rng);
        assert_eq!(arrivals.len(), 10);
        assert!(arrivals.iter().all(|&t| t <= SimTime::from_secs(10)));
    }

    #[test]
    fn rate_accessor() {
        let arr = ArrivalProcess::per_minute(25.0, ArrivalKind::Poisson);
        assert!((arr.rate_per_minute() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::per_minute(0.0, ArrivalKind::Poisson);
    }
}
