//! Arrival processes for tasks and jobs.
//!
//! The motivation study (Fig. 1) drives single machines with a stream of
//! independent tasks at a controlled rate ("task arrival rate" on the
//! figures' x axes). This module provides the Poisson and deterministic
//! arrival generators behind those experiments, plus [`DiurnalProfile`]:
//! a count-preserving nonhomogeneous sampler for scenario workloads with
//! time-of-day load waves.

use simcore::{SimDuration, SimRng, SimTime};

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Exponential gaps (memoryless Poisson process).
    Poisson,
    /// Fixed gaps of exactly `1/rate`.
    Deterministic,
}

/// A stream of arrival timestamps at a target rate.
///
/// # Examples
///
/// ```
/// use workload::arrival::{ArrivalKind, ArrivalProcess};
/// use simcore::{SimRng, SimTime, SimDuration};
///
/// // 12 tasks/min, deterministic: one arrival every 5 s.
/// let mut arr = ArrivalProcess::per_minute(12.0, ArrivalKind::Deterministic);
/// let mut rng = SimRng::seed_from(0);
/// let t1 = arr.next_arrival(&mut rng);
/// let t2 = arr.next_arrival(&mut rng);
/// assert_eq!(t2 - t1, SimDuration::from_secs(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    rate_per_sec: f64,
    kind: ArrivalKind,
    next_at: SimTime,
}

impl ArrivalProcess {
    /// Creates a process with `rate_per_min` arrivals per minute — the unit
    /// of the paper's Fig. 1 x axes.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn per_minute(rate_per_min: f64, kind: ArrivalKind) -> Self {
        assert!(
            rate_per_min.is_finite() && rate_per_min > 0.0,
            "arrival rate must be positive"
        );
        ArrivalProcess {
            rate_per_sec: rate_per_min / 60.0,
            kind,
            next_at: SimTime::ZERO,
        }
    }

    /// Target rate in arrivals per minute.
    pub fn rate_per_minute(&self) -> f64 {
        self.rate_per_sec * 60.0
    }

    /// Draws the next arrival timestamp (strictly after the previous one).
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        let gap_secs = match self.kind {
            ArrivalKind::Poisson => rng.exponential(self.rate_per_sec),
            ArrivalKind::Deterministic => 1.0 / self.rate_per_sec,
        };
        self.next_at += SimDuration::from_secs_f64(gap_secs.max(0.001));
        self.next_at
    }

    /// All arrivals up to `horizon`, from the current position.
    pub fn arrivals_until(&mut self, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// One Gaussian bump of extra load on top of a [`DiurnalProfile`]'s base
/// rate, centred at `center_s` with standard deviation `width_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalPeak {
    /// Centre of the peak, seconds since the start of the window.
    pub center_s: f64,
    /// Standard deviation of the bump, in seconds.
    pub width_s: f64,
    /// Extra arrivals per minute at the peak's centre.
    pub extra_per_min: f64,
}

/// A time-varying arrival intensity: a constant base rate plus Gaussian
/// peaks — the classic diurnal double-peak shape of production cluster
/// traces (morning and evening load waves).
///
/// Unlike [`ArrivalProcess`], sampling is *count-preserving*: exactly `n`
/// arrivals are placed over a window, distributed according to the
/// intensity via rejection sampling. That keeps scenario workloads
/// comparable across schedulers — every run sees the same number of jobs.
///
/// # Examples
///
/// ```
/// use workload::arrival::{DiurnalPeak, DiurnalProfile};
/// use simcore::{SimDuration, SimRng};
///
/// let profile = DiurnalProfile {
///     base_per_min: 0.5,
///     peaks: vec![DiurnalPeak { center_s: 300.0, width_s: 60.0, extra_per_min: 4.0 }],
/// };
/// let mut rng = SimRng::seed_from(7);
/// let arrivals = profile.sample_arrivals(20, SimDuration::from_mins(10), &mut rng);
/// assert_eq!(arrivals.len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    /// Background arrivals per minute, present at every instant.
    pub base_per_min: f64,
    /// Additive Gaussian load peaks.
    pub peaks: Vec<DiurnalPeak>,
}

impl DiurnalProfile {
    /// Arrival intensity (per minute) at `t_secs` into the window.
    pub fn intensity_per_min(&self, t_secs: f64) -> f64 {
        let mut rate = self.base_per_min;
        for p in &self.peaks {
            let z = (t_secs - p.center_s) / p.width_s;
            rate += p.extra_per_min * (-0.5 * z * z).exp();
        }
        rate
    }

    /// Upper bound on the intensity (base plus every peak at full height).
    pub fn max_per_min(&self) -> f64 {
        self.base_per_min + self.peaks.iter().map(|p| p.extra_per_min).sum::<f64>()
    }

    /// Places exactly `count` arrivals over `[0, window]`, distributed
    /// according to the intensity (thinning/rejection sampling), sorted.
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive, a peak width is not positive,
    /// a rate is negative, or the profile's total intensity is zero.
    pub fn sample_arrivals(
        &self,
        count: usize,
        window: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<SimTime> {
        let window_secs = window.as_secs_f64();
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "diurnal window must be positive"
        );
        assert!(
            self.base_per_min.is_finite() && self.base_per_min >= 0.0,
            "base rate must be non-negative"
        );
        for p in &self.peaks {
            assert!(
                p.width_s.is_finite() && p.width_s > 0.0,
                "peak width must be positive"
            );
            assert!(
                p.extra_per_min.is_finite() && p.extra_per_min >= 0.0,
                "peak rate must be non-negative"
            );
        }
        let max = self.max_per_min();
        assert!(max > 0.0, "diurnal profile must have positive intensity");

        let mut times = Vec::with_capacity(count);
        while times.len() < count {
            let t = rng.uniform_range(0.0, window_secs);
            if rng.chance(self.intensity_per_min(t) / max) {
                times.push(t);
            }
        }
        times.sort_by(f64::total_cmp);
        times
            .into_iter()
            .map(|t| SimTime::ZERO + SimDuration::from_secs_f64(t))
            .collect()
    }
}

/// An *unbounded* arrival law for open-stream (service-mode) workloads.
///
/// Unlike [`ArrivalProcess`] and [`DiurnalProfile::sample_arrivals`], which
/// produce a fixed count of arrivals, an open arrival law never runs out:
/// [`OpenArrivalGen`] lazily draws the next submission instant on demand, so
/// a horizon-bounded run can consume arrivals one at a time without ever
/// materializing a job list.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenArrival {
    /// Memoryless (homogeneous Poisson) arrivals at `rate_per_min`.
    Poisson {
        /// Mean arrivals per minute.
        rate_per_min: f64,
    },
    /// Nonhomogeneous Poisson arrivals whose intensity follows `profile`,
    /// repeated with period `period_s` (a synthetic "day"). Sampled by
    /// thinning against the profile's peak intensity, so the stream is
    /// unbounded while preserving the diurnal shape.
    Diurnal {
        /// The time-varying intensity over one period.
        profile: DiurnalProfile,
        /// Length of one repetition of the profile, in seconds.
        period_s: f64,
    },
    /// Compound Poisson: burst *epochs* arrive at `bursts_per_min`, and each
    /// epoch submits a uniform `burst_min..=burst_max` jobs at the same
    /// instant — the batch-submission spikes of production clusters.
    Bursty {
        /// Mean burst epochs per minute.
        bursts_per_min: f64,
        /// Smallest number of jobs per burst.
        burst_min: u32,
        /// Largest number of jobs per burst (inclusive).
        burst_max: u32,
    },
}

impl OpenArrival {
    /// Mean arrivals per minute of the law (time-averaged for diurnal,
    /// epochs × mean burst size for bursty).
    pub fn mean_rate_per_min(&self) -> f64 {
        match self {
            OpenArrival::Poisson { rate_per_min } => *rate_per_min,
            OpenArrival::Diurnal { profile, period_s } => {
                // Trapezoid-free mean: sample the intensity on a fine grid.
                let steps = 1000;
                let sum: f64 = (0..steps)
                    .map(|i| profile.intensity_per_min((i as f64 + 0.5) * period_s / steps as f64))
                    .sum();
                sum / steps as f64
            }
            OpenArrival::Bursty {
                bursts_per_min,
                burst_min,
                burst_max,
            } => bursts_per_min * f64::from(burst_min + burst_max) / 2.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate, an invalid diurnal profile/period, or
    /// an empty/inverted burst-size range.
    pub fn validate(&self) {
        match self {
            OpenArrival::Poisson { rate_per_min } => {
                assert!(
                    rate_per_min.is_finite() && *rate_per_min > 0.0,
                    "arrival rate must be positive"
                );
            }
            OpenArrival::Diurnal { profile, period_s } => {
                assert!(
                    period_s.is_finite() && *period_s > 0.0,
                    "diurnal period must be positive"
                );
                assert!(
                    profile.base_per_min.is_finite() && profile.base_per_min >= 0.0,
                    "base rate must be non-negative"
                );
                for p in &profile.peaks {
                    assert!(
                        p.width_s.is_finite() && p.width_s > 0.0,
                        "peak width must be positive"
                    );
                    assert!(
                        p.extra_per_min.is_finite() && p.extra_per_min >= 0.0,
                        "peak rate must be non-negative"
                    );
                }
                assert!(
                    profile.max_per_min() > 0.0,
                    "diurnal profile must have positive intensity"
                );
            }
            OpenArrival::Bursty {
                bursts_per_min,
                burst_min,
                burst_max,
            } => {
                assert!(
                    bursts_per_min.is_finite() && *bursts_per_min > 0.0,
                    "burst rate must be positive"
                );
                assert!(
                    *burst_min >= 1 && burst_max >= burst_min,
                    "burst size range must satisfy 1 <= min <= max"
                );
            }
        }
    }
}

/// The stateful lazy sampler behind an [`OpenArrival`] law: each call to
/// [`OpenArrivalGen::next`] yields the next submission instant
/// (non-decreasing; bursty epochs repeat the same instant for every job in
/// the burst). `rate_scale` multiplies the law's intensity — the
/// utilization knob of the service-mode sweep — without touching burst
/// sizes or the diurnal shape.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenArrivalGen {
    law: OpenArrival,
    rate_scale: f64,
    /// Current epoch position, seconds since the stream started.
    t_secs: f64,
    /// Jobs still owed at the current epoch (bursty only).
    pending_burst: u32,
}

impl OpenArrivalGen {
    /// Creates a sampler for `law` with its intensity scaled by
    /// `rate_scale`.
    ///
    /// # Panics
    ///
    /// Panics if the law is invalid (see [`OpenArrival::validate`]) or the
    /// scale is not strictly positive and finite.
    pub fn new(law: OpenArrival, rate_scale: f64) -> Self {
        law.validate();
        assert!(
            rate_scale.is_finite() && rate_scale > 0.0,
            "rate scale must be positive"
        );
        OpenArrivalGen {
            law,
            rate_scale,
            t_secs: 0.0,
            pending_burst: 0,
        }
    }

    /// The scaled mean arrivals per minute.
    pub fn mean_rate_per_min(&self) -> f64 {
        self.law.mean_rate_per_min() * self.rate_scale
    }

    /// Draws the next submission instant. Non-decreasing; consecutive calls
    /// within one burst return the same instant.
    pub fn next(&mut self, rng: &mut SimRng) -> SimTime {
        match &self.law {
            OpenArrival::Poisson { rate_per_min } => {
                let rate_per_sec = rate_per_min * self.rate_scale / 60.0;
                self.t_secs += rng.exponential(rate_per_sec).max(0.001);
            }
            OpenArrival::Diurnal { profile, period_s } => {
                // Thinning (Lewis & Shedler): candidates at the scaled peak
                // intensity, accepted with probability intensity(t)/max. The
                // acceptance ratio is scale-free, so `rate_scale` only
                // shrinks the candidate gaps.
                let max_per_sec = profile.max_per_min() * self.rate_scale / 60.0;
                loop {
                    self.t_secs += rng.exponential(max_per_sec).max(0.001);
                    let phase = self.t_secs % period_s;
                    if rng.chance(profile.intensity_per_min(phase) / profile.max_per_min()) {
                        break;
                    }
                }
            }
            OpenArrival::Bursty {
                bursts_per_min,
                burst_min,
                burst_max,
            } => {
                if self.pending_burst > 0 {
                    self.pending_burst -= 1;
                } else {
                    let rate_per_sec = bursts_per_min * self.rate_scale / 60.0;
                    self.t_secs += rng.exponential(rate_per_sec).max(0.001);
                    let size = rng.uniform_u64(u64::from(*burst_min), u64::from(*burst_max)) as u32;
                    self.pending_burst = size - 1;
                }
            }
        }
        SimTime::ZERO + SimDuration::from_secs_f64(self.t_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_gaps_are_exact() {
        let mut arr = ArrivalProcess::per_minute(60.0, ArrivalKind::Deterministic);
        let mut rng = SimRng::seed_from(0);
        let times: Vec<SimTime> = (0..3).map(|_| arr.next_arrival(&mut rng)).collect();
        assert_eq!(times[0], SimTime::from_secs(1));
        assert_eq!(times[1], SimTime::from_secs(2));
        assert_eq!(times[2], SimTime::from_secs(3));
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut arr = ArrivalProcess::per_minute(30.0, ArrivalKind::Poisson);
        let mut rng = SimRng::seed_from(11);
        let horizon = SimTime::from_secs(60 * 200); // 200 minutes
        let arrivals = arr.arrivals_until(horizon, &mut rng);
        let rate = arrivals.len() as f64 / 200.0;
        assert!((rate - 30.0).abs() < 1.5, "observed rate {rate}/min");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut arr = ArrivalProcess::per_minute(600.0, ArrivalKind::Poisson);
        let mut rng = SimRng::seed_from(2);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let t = arr.next_arrival(&mut rng);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn arrivals_until_respects_horizon() {
        let mut arr = ArrivalProcess::per_minute(60.0, ArrivalKind::Deterministic);
        let mut rng = SimRng::seed_from(0);
        let arrivals = arr.arrivals_until(SimTime::from_secs(10), &mut rng);
        assert_eq!(arrivals.len(), 10);
        assert!(arrivals.iter().all(|&t| t <= SimTime::from_secs(10)));
    }

    #[test]
    fn rate_accessor() {
        let arr = ArrivalProcess::per_minute(25.0, ArrivalKind::Poisson);
        assert!((arr.rate_per_minute() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::per_minute(0.0, ArrivalKind::Poisson);
    }

    fn double_peak() -> DiurnalProfile {
        DiurnalProfile {
            base_per_min: 0.5,
            peaks: vec![
                DiurnalPeak {
                    center_s: 200.0,
                    width_s: 40.0,
                    extra_per_min: 6.0,
                },
                DiurnalPeak {
                    center_s: 700.0,
                    width_s: 40.0,
                    extra_per_min: 6.0,
                },
            ],
        }
    }

    #[test]
    fn diurnal_sampling_is_count_preserving_sorted_and_deterministic() {
        let profile = double_peak();
        let window = SimDuration::from_mins(15);
        let a = profile.sample_arrivals(40, window, &mut SimRng::seed_from(3));
        let b = profile.sample_arrivals(40, window, &mut SimRng::seed_from(3));
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        let end = SimTime::ZERO + window;
        assert!(a.iter().all(|&t| t <= end));
    }

    #[test]
    fn diurnal_mass_concentrates_at_peaks() {
        let profile = double_peak();
        let window = SimDuration::from_mins(15);
        let arrivals = profile.sample_arrivals(300, window, &mut SimRng::seed_from(5));
        let near_peak = arrivals
            .iter()
            .filter(|t| {
                let s = t.as_secs_f64();
                (s - 200.0).abs() < 100.0 || (s - 700.0).abs() < 100.0
            })
            .count();
        // Peaks cover ~44 % of the window but carry most of the intensity.
        assert!(
            near_peak * 2 > arrivals.len(),
            "only {near_peak}/{} arrivals near peaks",
            arrivals.len()
        );
    }

    #[test]
    fn diurnal_intensity_bounded_by_max() {
        let profile = double_peak();
        for i in 0..100 {
            let t = f64::from(i) * 9.0;
            assert!(profile.intensity_per_min(t) <= profile.max_per_min() + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "diurnal window must be positive")]
    fn diurnal_zero_window_rejected() {
        double_peak().sample_arrivals(1, SimDuration::ZERO, &mut SimRng::seed_from(0));
    }

    #[test]
    #[should_panic(expected = "peak width must be positive")]
    fn diurnal_zero_width_rejected() {
        let profile = DiurnalProfile {
            base_per_min: 1.0,
            peaks: vec![DiurnalPeak {
                center_s: 10.0,
                width_s: 0.0,
                extra_per_min: 1.0,
            }],
        };
        profile.sample_arrivals(1, SimDuration::from_secs(60), &mut SimRng::seed_from(0));
    }

    fn open_laws() -> Vec<OpenArrival> {
        vec![
            OpenArrival::Poisson { rate_per_min: 6.0 },
            OpenArrival::Diurnal {
                profile: double_peak(),
                period_s: 900.0,
            },
            OpenArrival::Bursty {
                bursts_per_min: 1.5,
                burst_min: 2,
                burst_max: 5,
            },
        ]
    }

    #[test]
    fn open_streams_are_nondecreasing_and_deterministic() {
        for law in open_laws() {
            let draw = |seed: u64| -> Vec<SimTime> {
                let mut gen = OpenArrivalGen::new(law.clone(), 1.0);
                let mut rng = SimRng::seed_from(seed);
                (0..200).map(|_| gen.next(&mut rng)).collect()
            };
            let a = draw(7);
            assert_eq!(a, draw(7), "{law:?} not deterministic");
            assert_ne!(a, draw(8), "{law:?} ignores its seed");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{law:?} went backwards");
        }
    }

    #[test]
    fn open_poisson_respects_scaled_rate() {
        for &scale in &[0.5, 1.0, 2.0] {
            let mut gen = OpenArrivalGen::new(OpenArrival::Poisson { rate_per_min: 10.0 }, scale);
            let mut rng = SimRng::seed_from(3);
            let mut count = 0usize;
            let horizon = SimTime::from_secs(60 * 300);
            loop {
                if gen.next(&mut rng) > horizon {
                    break;
                }
                count += 1;
            }
            let rate = count as f64 / 300.0;
            let want = 10.0 * scale;
            assert!(
                (rate - want).abs() < 0.15 * want,
                "scale {scale}: observed {rate}/min, want ~{want}/min"
            );
        }
    }

    #[test]
    fn open_diurnal_concentrates_at_peaks_across_periods() {
        let law = OpenArrival::Diurnal {
            profile: double_peak(),
            period_s: 900.0,
        };
        let mut gen = OpenArrivalGen::new(law, 1.0);
        let mut rng = SimRng::seed_from(5);
        let times: Vec<f64> = (0..600).map(|_| gen.next(&mut rng).as_secs_f64()).collect();
        // The stream keeps going past one period (it is unbounded)…
        assert!(*times.last().unwrap() > 900.0);
        // …and the per-period phase mass still sits at the peaks.
        let near_peak = times
            .iter()
            .filter(|t| {
                let s = *t % 900.0;
                (s - 200.0).abs() < 100.0 || (s - 700.0).abs() < 100.0
            })
            .count();
        assert!(
            near_peak * 2 > times.len(),
            "only {near_peak}/{} arrivals near peaks",
            times.len()
        );
    }

    #[test]
    fn open_bursts_share_an_instant_and_respect_sizes() {
        let mut gen = OpenArrivalGen::new(
            OpenArrival::Bursty {
                bursts_per_min: 2.0,
                burst_min: 3,
                burst_max: 3,
            },
            1.0,
        );
        let mut rng = SimRng::seed_from(9);
        let times: Vec<SimTime> = (0..30).map(|_| gen.next(&mut rng)).collect();
        // Exactly-3 bursts: every run of equal timestamps has length 3.
        let mut runs = Vec::new();
        let mut len = 1;
        for w in times.windows(2) {
            if w[0] == w[1] {
                len += 1;
            } else {
                runs.push(len);
                len = 1;
            }
        }
        runs.push(len);
        assert!(runs.iter().all(|&r| r == 3), "burst runs {runs:?}");
    }

    #[test]
    fn open_mean_rate_estimates() {
        let poisson = OpenArrival::Poisson { rate_per_min: 4.0 };
        assert!((poisson.mean_rate_per_min() - 4.0).abs() < 1e-12);
        let bursty = OpenArrival::Bursty {
            bursts_per_min: 2.0,
            burst_min: 1,
            burst_max: 3,
        };
        assert!((bursty.mean_rate_per_min() - 4.0).abs() < 1e-12);
        let diurnal = OpenArrival::Diurnal {
            profile: DiurnalProfile {
                base_per_min: 2.0,
                peaks: vec![],
            },
            period_s: 600.0,
        };
        assert!((diurnal.mean_rate_per_min() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "burst size range must satisfy")]
    fn open_burst_range_rejected() {
        OpenArrivalGen::new(
            OpenArrival::Bursty {
                bursts_per_min: 1.0,
                burst_min: 4,
                burst_max: 2,
            },
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "rate scale must be positive")]
    fn open_zero_scale_rejected() {
        OpenArrivalGen::new(OpenArrival::Poisson { rate_per_min: 1.0 }, 0.0);
    }
}
