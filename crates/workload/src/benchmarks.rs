//! PUMA benchmark resource-demand profiles.

use simcore::SimRng;

use crate::TaskDemand;

/// The three PUMA applications used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkKind {
    /// `Wordcount`: map-intensive, CPU-bound (paper Fig. 1(d)).
    Wordcount,
    /// `Grep`: shuffle/reduce-intensive, I/O-bound (paper Fig. 1(d)).
    Grep,
    /// `Terasort`: shuffle/reduce-intensive, I/O-bound with full-volume
    /// shuffle (paper Fig. 1(d)).
    Terasort,
}

impl BenchmarkKind {
    /// All kinds, in the paper's customary order.
    pub const ALL: [BenchmarkKind; 3] = [
        BenchmarkKind::Wordcount,
        BenchmarkKind::Grep,
        BenchmarkKind::Terasort,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn as_str(self) -> &'static str {
        match self {
            BenchmarkKind::Wordcount => "Wordcount",
            BenchmarkKind::Grep => "Grep",
            BenchmarkKind::Terasort => "Terasort",
        }
    }
}

impl std::fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A benchmark's resource-demand profile.
///
/// All times are on the reference machine (the Table I desktop, speed 1.0);
/// the simulator scales them by each machine's CPU/I/O speed. Map demands
/// are per 64 MB input block; reduce demands are per MB of shuffle input.
///
/// # Calibration
///
/// The profiles are calibrated to the paper's published observations:
///
/// * Fig. 1(d): Wordcount's completion time is dominated by the map phase;
///   Grep and Terasort by shuffle+reduce.
/// * §I: Wordcount (50 GB) on the desktop takes ~63 min — with 800 blocks
///   over 4 map slots this implies roughly 14–19 s per map task.
/// * Fig. 1(c): the three benchmarks peak in throughput-per-watt at
///   different task arrival rates (Wordcount lowest, Terasort highest),
///   which emerges from their different service-time mixes.
///
/// # Examples
///
/// ```
/// use workload::Benchmark;
///
/// let wc = Benchmark::wordcount();
/// // Map-intensive: CPU dominates a Wordcount map task.
/// assert!(wc.map_cpu_secs() > 2.0 * wc.map_io_secs());
/// let ts = Benchmark::terasort();
/// // Terasort shuffles its full input volume.
/// assert_eq!(ts.map_selectivity(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    kind: BenchmarkKind,
    map_cpu_secs: f64,
    map_io_secs: f64,
    map_selectivity: f64,
    reduce_cpu_per_mb: f64,
    reduce_io_per_mb: f64,
    variability: f64,
}

impl Benchmark {
    /// The Wordcount profile: CPU-heavy maps, low-volume shuffle.
    pub fn wordcount() -> Self {
        Benchmark {
            kind: BenchmarkKind::Wordcount,
            map_cpu_secs: 12.0,
            map_io_secs: 2.5,
            map_selectivity: 0.10,
            reduce_cpu_per_mb: 0.06,
            reduce_io_per_mb: 0.03,
            variability: 0.15,
        }
    }

    /// The Grep profile: scan-style maps, medium-volume shuffle and
    /// I/O-heavy reduces.
    pub fn grep() -> Self {
        Benchmark {
            kind: BenchmarkKind::Grep,
            map_cpu_secs: 2.5,
            map_io_secs: 4.5,
            map_selectivity: 0.45,
            reduce_cpu_per_mb: 0.035,
            reduce_io_per_mb: 0.13,
            variability: 0.20,
        }
    }

    /// The Terasort profile: I/O-bound maps and a full-volume shuffle into
    /// heavily I/O-bound reduces.
    pub fn terasort() -> Self {
        Benchmark {
            kind: BenchmarkKind::Terasort,
            map_cpu_secs: 2.0,
            map_io_secs: 4.5,
            map_selectivity: 1.0,
            reduce_cpu_per_mb: 0.025,
            reduce_io_per_mb: 0.10,
            variability: 0.20,
        }
    }

    /// The profile for `kind`.
    pub fn of(kind: BenchmarkKind) -> Self {
        match kind {
            BenchmarkKind::Wordcount => Benchmark::wordcount(),
            BenchmarkKind::Grep => Benchmark::grep(),
            BenchmarkKind::Terasort => Benchmark::terasort(),
        }
    }

    /// Which PUMA application this profile models.
    pub fn kind(&self) -> BenchmarkKind {
        self.kind
    }

    /// Mean CPU seconds of one map task (per 64 MB block, reference
    /// machine).
    pub fn map_cpu_secs(&self) -> f64 {
        self.map_cpu_secs
    }

    /// Mean I/O seconds of one map task (local read; locality multiplies
    /// this).
    pub fn map_io_secs(&self) -> f64 {
        self.map_io_secs
    }

    /// Ratio of map output volume to input volume.
    pub fn map_selectivity(&self) -> f64 {
        self.map_selectivity
    }

    /// CPU seconds per MB of shuffle input consumed by a reduce task.
    pub fn reduce_cpu_per_mb(&self) -> f64 {
        self.reduce_cpu_per_mb
    }

    /// I/O seconds per MB of shuffle input consumed by a reduce task.
    pub fn reduce_io_per_mb(&self) -> f64 {
        self.reduce_io_per_mb
    }

    /// Coefficient of task-to-task demand variation (data skew).
    pub fn variability(&self) -> f64 {
        self.variability
    }

    /// Samples the demand of one map task over a `block_mb` input block.
    ///
    /// Task-to-task variation models data skew: demands are multiplied by a
    /// truncated-normal factor with the profile's coefficient of variation.
    pub fn sample_map_demand(&self, block_mb: f64, rng: &mut SimRng) -> TaskDemand {
        let scale = block_mb / 64.0;
        let f = rng.normal_clamped(1.0, self.variability, 0.4, 2.5);
        TaskDemand {
            cpu_secs: self.map_cpu_secs * scale * f,
            io_secs: self.map_io_secs * scale * f,
            input_mb: block_mb,
            output_mb: block_mb * self.map_selectivity,
        }
    }

    /// Samples the demand of one reduce task consuming `shuffle_mb` of map
    /// output.
    pub fn sample_reduce_demand(&self, shuffle_mb: f64, rng: &mut SimRng) -> TaskDemand {
        let f = rng.normal_clamped(1.0, self.variability, 0.4, 2.5);
        TaskDemand {
            cpu_secs: self.reduce_cpu_per_mb * shuffle_mb * f,
            io_secs: self.reduce_io_per_mb * shuffle_mb * f,
            input_mb: shuffle_mb,
            output_mb: shuffle_mb,
        }
    }

    /// Whether this benchmark is CPU-bound at the map phase (Wordcount) or
    /// I/O-bound (Grep, Terasort) — the axis along which E-Ant's adaptivity
    /// is evaluated in Fig. 9(a).
    pub fn is_cpu_bound(&self) -> bool {
        self.map_cpu_secs > self.map_io_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_is_cpu_bound_others_io_bound() {
        assert!(Benchmark::wordcount().is_cpu_bound());
        assert!(!Benchmark::grep().is_cpu_bound());
        assert!(!Benchmark::terasort().is_cpu_bound());
    }

    #[test]
    fn of_roundtrips_kind() {
        for kind in BenchmarkKind::ALL {
            assert_eq!(Benchmark::of(kind).kind(), kind);
        }
    }

    #[test]
    fn map_demand_scales_with_block_size() {
        let wc = Benchmark::wordcount();
        let mut rng = SimRng::seed_from(0);
        // Use many samples to average out variability.
        let n = 2000;
        let (mut small, mut large) = (0.0, 0.0);
        for _ in 0..n {
            small += wc.sample_map_demand(64.0, &mut rng).cpu_secs;
            large += wc.sample_map_demand(128.0, &mut rng).cpu_secs;
        }
        let ratio = large / small;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn map_output_follows_selectivity() {
        let ts = Benchmark::terasort();
        let mut rng = SimRng::seed_from(1);
        let d = ts.sample_map_demand(64.0, &mut rng);
        assert_eq!(d.output_mb, 64.0);
        let wc = Benchmark::wordcount();
        let d = wc.sample_map_demand(64.0, &mut rng);
        assert!((d.output_mb - 6.4).abs() < 1e-12);
    }

    #[test]
    fn reduce_demand_scales_with_shuffle_volume() {
        let g = Benchmark::grep();
        let mut rng = SimRng::seed_from(2);
        let n = 2000;
        let (mut small, mut large) = (0.0, 0.0);
        for _ in 0..n {
            small += g.sample_reduce_demand(100.0, &mut rng).io_secs;
            large += g.sample_reduce_demand(300.0, &mut rng).io_secs;
        }
        let ratio = large / small;
        assert!((ratio - 3.0).abs() < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn variability_stays_in_clamp_range() {
        let ts = Benchmark::terasort();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..500 {
            let d = ts.sample_map_demand(64.0, &mut rng);
            let factor = d.cpu_secs / ts.map_cpu_secs();
            assert!((0.39..=2.51).contains(&factor), "factor = {factor}");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(BenchmarkKind::Wordcount.to_string(), "Wordcount");
        assert_eq!(BenchmarkKind::Grep.to_string(), "Grep");
        assert_eq!(BenchmarkKind::Terasort.to_string(), "Terasort");
    }

    #[test]
    fn demand_sampling_is_deterministic() {
        let wc = Benchmark::wordcount();
        let d1 = wc.sample_map_demand(64.0, &mut SimRng::seed_from(42));
        let d2 = wc.sample_map_demand(64.0, &mut SimRng::seed_from(42));
        assert_eq!(d1, d2);
    }
}
