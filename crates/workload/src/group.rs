//! Interned job-group symbols.
//!
//! E-Ant's job-level exchange (§IV-D) groups jobs into *homogeneous job
//! groups*: jobs running the same benchmark at the same MSD size class have
//! the same resource demands, so their pheromone rows can be blended. The
//! scheduler decision path compares and indexes by group on every control
//! interval, so groups are interned once at job registration into dense
//! [`GroupId`] symbols instead of being re-derived as `String` keys per
//! query.

use std::collections::BTreeMap;
use std::fmt;

/// Dense identifier of a homogeneous job group, assigned by a
/// [`GroupTable`] in first-intern order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Dense index of this group, valid for `Vec`-per-group tables sized
    /// with [`GroupTable::len`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Bidirectional intern table mapping group labels (e.g. `"Wordcount-S"`)
/// to dense [`GroupId`]s.
///
/// Ids are assigned in first-intern order, so two tables fed the same label
/// sequence assign identical ids — re-interning a run's jobs in submission
/// order reproduces the live table exactly, which the scoreboard oracle
/// rebuild relies on.
///
/// # Examples
///
/// ```
/// use workload::{GroupId, GroupTable};
///
/// let mut groups = GroupTable::new();
/// let wc = groups.intern("Wordcount-S");
/// let gr = groups.intern("Grep-M");
/// assert_eq!(groups.intern("Wordcount-S"), wc); // idempotent
/// assert_eq!(wc, GroupId(0));
/// assert_eq!(gr, GroupId(1));
/// assert_eq!(groups.name(wc), "Wordcount-S");
/// assert_eq!(groups.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupTable {
    names: Vec<String>,
    ids: BTreeMap<String, GroupId>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GroupTable::default()
    }

    /// Returns the id for `label`, allocating the next dense id on first
    /// sight.
    pub fn intern(&mut self, label: &str) -> GroupId {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = GroupId(u32::try_from(self.names.len()).expect("more than u32::MAX groups"));
        self.names.push(label.to_owned());
        self.ids.insert(label.to_owned(), id);
        id
    }

    /// Looks up an already-interned label without allocating.
    pub fn get(&self, label: &str) -> Option<GroupId> {
        self.ids.get(label).copied()
    }

    /// The label interned as `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: GroupId) -> &str {
        &self.names[id.index()]
    }

    /// All interned labels in id order (index == `GroupId::index`).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of distinct groups interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no group has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_first_seen_order() {
        let mut t = GroupTable::new();
        assert_eq!(t.intern("b"), GroupId(0));
        assert_eq!(t.intern("a"), GroupId(1));
        assert_eq!(t.intern("b"), GroupId(0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.names(), &["b".to_owned(), "a".to_owned()]);
    }

    #[test]
    fn get_does_not_allocate_new_ids() {
        let mut t = GroupTable::new();
        assert_eq!(t.get("x"), None);
        let id = t.intern("x");
        assert_eq!(t.get("x"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replaying_labels_reproduces_ids() {
        let labels = ["Grep-M", "Wordcount-S", "Grep-M", "Terasort-L"];
        let mut live = GroupTable::new();
        let live_ids: Vec<GroupId> = labels.iter().map(|l| live.intern(l)).collect();
        let mut rebuilt = GroupTable::new();
        let rebuilt_ids: Vec<GroupId> = labels.iter().map(|l| rebuilt.intern(l)).collect();
        assert_eq!(live, rebuilt);
        assert_eq!(live_ids, rebuilt_ids);
    }

    #[test]
    fn display_and_index() {
        assert_eq!(GroupId(3).to_string(), "g3");
        assert_eq!(GroupId(3).index(), 3);
        assert!(GroupTable::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn name_of_unknown_id_panics() {
        GroupTable::new().name(GroupId(0));
    }
}
