//! Job and task specifications.

use std::fmt;

use simcore::{SimRng, SimTime};

use cluster::hdfs::BLOCK_SIZE_MB;
use cluster::SlotKind;

use crate::Benchmark;

/// Identifier of a submitted job. In the paper's ACO framing, one job is one
/// ant colony.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl JobId {
    /// Dense index of this job.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Index of a task within its job, split by kind. In the paper's ACO
/// framing, one task is one ant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskIndex {
    /// Map or reduce.
    pub kind: SlotKind,
    /// Zero-based index among the job's tasks of that kind.
    pub index: u32,
}

/// Fully-qualified task identifier (`T^j_n` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// The owning job (colony).
    pub job: JobId,
    /// The task's index within the job.
    pub task: TaskIndex,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}{}", self.job, self.task.kind, self.task.index)
    }
}

/// Sampled resource demand of one task on the reference machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskDemand {
    /// CPU core-seconds at reference speed.
    pub cpu_secs: f64,
    /// I/O seconds at reference speed (before locality multipliers).
    pub io_secs: f64,
    /// Input volume in MB.
    pub input_mb: f64,
    /// Output volume in MB (map output feeds the shuffle).
    pub output_mb: f64,
}

impl TaskDemand {
    /// Total service seconds on the reference machine (CPU + I/O phases run
    /// back to back inside one task attempt).
    pub fn reference_secs(&self) -> f64 {
        self.cpu_secs + self.io_secs
    }

    /// The fraction of one core this task keeps busy over its lifetime on
    /// the reference machine: full core during the CPU phase, a small
    /// residual during I/O waits.
    pub fn core_fraction(&self) -> f64 {
        let total = self.reference_secs();
        if total <= 0.0 {
            return 0.0;
        }
        (self.cpu_secs * 1.0 + self.io_secs * 0.15) / total
    }
}

/// Size classes of the MSD workload (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// 40 % of jobs; 1–100 GB input.
    Small,
    /// 20 % of jobs; 0.1–1 TB input.
    Medium,
    /// 10 % of jobs; 1–10 TB input.
    Large,
}

impl SizeClass {
    /// Single-letter suffix used by Fig. 8(c)'s job labels
    /// (e.g. `Wordcount-S`).
    pub fn suffix(self) -> &'static str {
        match self {
            SizeClass::Small => "S",
            SizeClass::Medium => "M",
            SizeClass::Large => "L",
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A concrete MapReduce job: benchmark profile, task counts and submit time.
///
/// # Examples
///
/// ```
/// use workload::{Benchmark, JobId, JobSpec};
/// use simcore::SimTime;
///
/// let job = JobSpec::new(JobId(3), Benchmark::grep(), 100, 8, SimTime::ZERO);
/// assert_eq!(job.num_maps(), 100);
/// assert_eq!(job.num_reduces(), 8);
/// // 100 blocks × 64 MB × 0.45 selectivity / 8 reducers of shuffle each:
/// assert!((job.shuffle_mb_per_reduce() - 100.0 * 64.0 * 0.45 / 8.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    id: JobId,
    benchmark: Benchmark,
    num_maps: u32,
    num_reduces: u32,
    submit_at: SimTime,
    size_class: Option<SizeClass>,
}

impl JobSpec {
    /// Creates a job with explicit task counts.
    ///
    /// # Panics
    ///
    /// Panics if `num_maps` is zero (a MapReduce job needs at least one map
    /// task; zero reduces is legal and models map-only jobs).
    pub fn new(
        id: JobId,
        benchmark: Benchmark,
        num_maps: u32,
        num_reduces: u32,
        submit_at: SimTime,
    ) -> Self {
        assert!(num_maps > 0, "a job needs at least one map task");
        JobSpec {
            id,
            benchmark,
            num_maps,
            num_reduces,
            submit_at,
            size_class: None,
        }
    }

    /// Creates a job sized from its input volume: one map task per 64 MB
    /// block (rounding up), like stock Hadoop.
    ///
    /// # Panics
    ///
    /// Panics if `input_gb` is not strictly positive.
    pub fn from_input_gb(
        id: JobId,
        benchmark: Benchmark,
        input_gb: f64,
        num_reduces: u32,
        submit_at: SimTime,
    ) -> Self {
        assert!(
            input_gb.is_finite() && input_gb > 0.0,
            "input size must be positive"
        );
        let blocks = ((input_gb * 1024.0) / BLOCK_SIZE_MB as f64).ceil() as u32;
        JobSpec::new(id, benchmark, blocks.max(1), num_reduces, submit_at)
    }

    /// Tags the job with an MSD size class (builder-style).
    pub fn with_size_class(mut self, class: SizeClass) -> Self {
        self.size_class = Some(class);
        self
    }

    /// The job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The benchmark profile this job runs.
    pub fn benchmark(&self) -> &Benchmark {
        &self.benchmark
    }

    /// Number of map tasks.
    pub fn num_maps(&self) -> u32 {
        self.num_maps
    }

    /// Number of reduce tasks.
    pub fn num_reduces(&self) -> u32 {
        self.num_reduces
    }

    /// Total tasks of both kinds.
    pub fn num_tasks(&self) -> u32 {
        self.num_maps + self.num_reduces
    }

    /// When the job enters the cluster.
    pub fn submit_at(&self) -> SimTime {
        self.submit_at
    }

    /// The MSD size class, when generated by the MSD generator.
    pub fn size_class(&self) -> Option<SizeClass> {
        self.size_class
    }

    /// Label used by Fig. 8(c): benchmark name plus size suffix, e.g.
    /// `"Terasort-M"`; bare benchmark name for untagged jobs.
    ///
    /// This label also names the *homogeneous job group* the job belongs to
    /// for E-Ant's job-level exchange (§IV-D) — jobs with the same benchmark
    /// and size class have the same resource demands. The engine interns it
    /// into a dense [`crate::GroupId`] at registration; the scheduler
    /// decision path never touches the `String` form.
    pub fn class_label(&self) -> String {
        match self.size_class {
            Some(c) => format!("{}-{}", self.benchmark.kind(), c),
            None => self.benchmark.kind().to_string(),
        }
    }

    /// Expected shuffle input per reduce task in MB (uniform partitioning of
    /// total map output).
    pub fn shuffle_mb_per_reduce(&self) -> f64 {
        if self.num_reduces == 0 {
            return 0.0;
        }
        let map_output =
            self.num_maps as f64 * BLOCK_SIZE_MB as f64 * self.benchmark.map_selectivity();
        map_output / self.num_reduces as f64
    }

    /// Samples the demand of one of this job's map tasks.
    pub fn map_demand(&self, rng: &mut SimRng) -> TaskDemand {
        self.benchmark.sample_map_demand(BLOCK_SIZE_MB as f64, rng)
    }

    /// Samples the demand of one of this job's reduce tasks.
    pub fn reduce_demand(&self, rng: &mut SimRng) -> TaskDemand {
        self.benchmark
            .sample_reduce_demand(self.shuffle_mb_per_reduce(), rng)
    }

    /// An estimate of the job's serial work in reference-machine seconds —
    /// used to compute standalone completion times for slowdown/fairness
    /// metrics.
    pub fn reference_work_secs(&self) -> f64 {
        let map =
            self.num_maps as f64 * (self.benchmark.map_cpu_secs() + self.benchmark.map_io_secs());
        let per_reduce = self.shuffle_mb_per_reduce()
            * (self.benchmark.reduce_cpu_per_mb() + self.benchmark.reduce_io_per_mb());
        map + self.num_reduces as f64 * per_reduce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_input_gb_rounds_up_blocks() {
        let j = JobSpec::from_input_gb(JobId(0), Benchmark::wordcount(), 1.0, 4, SimTime::ZERO);
        assert_eq!(j.num_maps(), 16); // 1024/64
        let j = JobSpec::from_input_gb(JobId(0), Benchmark::wordcount(), 0.01, 4, SimTime::ZERO);
        assert_eq!(j.num_maps(), 1); // tiny input still gets one block
    }

    #[test]
    #[should_panic(expected = "a job needs at least one map task")]
    fn zero_maps_rejected() {
        JobSpec::new(JobId(0), Benchmark::grep(), 0, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "input size must be positive")]
    fn negative_input_rejected() {
        JobSpec::from_input_gb(JobId(0), Benchmark::grep(), -1.0, 1, SimTime::ZERO);
    }

    #[test]
    fn map_only_job_has_zero_shuffle() {
        let j = JobSpec::new(JobId(0), Benchmark::terasort(), 10, 0, SimTime::ZERO);
        assert_eq!(j.shuffle_mb_per_reduce(), 0.0);
        assert_eq!(j.num_tasks(), 10);
    }

    #[test]
    fn class_labels() {
        let j = JobSpec::new(JobId(0), Benchmark::grep(), 10, 2, SimTime::ZERO)
            .with_size_class(SizeClass::Medium);
        assert_eq!(j.class_label(), "Grep-M");
        let bare = JobSpec::new(JobId(1), Benchmark::grep(), 10, 2, SimTime::ZERO);
        assert_eq!(bare.class_label(), "Grep");
        assert_eq!(bare.size_class(), None);
    }

    #[test]
    fn core_fraction_between_zero_and_one() {
        let d = TaskDemand {
            cpu_secs: 10.0,
            io_secs: 0.0,
            input_mb: 64.0,
            output_mb: 6.4,
        };
        assert_eq!(d.core_fraction(), 1.0);
        let idle = TaskDemand {
            cpu_secs: 0.0,
            io_secs: 0.0,
            input_mb: 0.0,
            output_mb: 0.0,
        };
        assert_eq!(idle.core_fraction(), 0.0);
        let mixed = TaskDemand {
            cpu_secs: 5.0,
            io_secs: 5.0,
            input_mb: 64.0,
            output_mb: 64.0,
        };
        assert!(mixed.core_fraction() > 0.5 && mixed.core_fraction() < 1.0);
    }

    #[test]
    fn reference_work_positive_and_monotone_in_maps() {
        let small = JobSpec::new(JobId(0), Benchmark::terasort(), 10, 4, SimTime::ZERO);
        let large = JobSpec::new(JobId(1), Benchmark::terasort(), 100, 4, SimTime::ZERO);
        assert!(small.reference_work_secs() > 0.0);
        assert!(large.reference_work_secs() > small.reference_work_secs());
    }

    #[test]
    fn task_id_display() {
        let id = TaskId {
            job: JobId(2),
            task: TaskIndex {
                kind: SlotKind::Map,
                index: 7,
            },
        };
        assert_eq!(id.to_string(), "j2/map7");
    }

    #[test]
    fn size_class_suffixes() {
        assert_eq!(SizeClass::Small.to_string(), "S");
        assert_eq!(SizeClass::Medium.to_string(), "M");
        assert_eq!(SizeClass::Large.to_string(), "L");
    }
}
