//! MapReduce workload models for the E-Ant reproduction.
//!
//! The paper drives its experiments with three PUMA benchmark applications —
//! **Wordcount** (map/CPU-intensive), **Grep** and **Terasort** (both
//! shuffle/reduce- i.e. I/O-intensive, per the paper's Fig. 1(d)) — and with
//! **MSD**, a synthetic workload derived from a month of Microsoft
//! production traces (Table III), scaled down to 87 jobs.
//!
//! This crate models those workloads at the granularity the scheduler sees:
//!
//! * [`Benchmark`] — per-benchmark resource demand profiles: CPU and I/O
//!   seconds per map task (on the reference machine), map output
//!   selectivity, per-MB reduce demands, and task-to-task variability.
//! * [`JobSpec`] / [`TaskDemand`] — a concrete job (task counts, submit
//!   time, size class) and per-task resource demands sampled from its
//!   benchmark profile.
//! * [`msd`] — the Table III generator.
//! * [`mix`] — stream-structured workload composition for scenario files:
//!   per-tenant job templates with Poisson/uniform/batch/diurnal arrivals.
//! * [`arrival`] — Poisson and fixed-rate arrival processes for the
//!   motivation-study experiments (Fig. 1) and the MSD submission schedule,
//!   plus the diurnal intensity sampler and the unbounded open-stream
//!   arrival laws behind service mode.
//! * [`open`] — lazily-evaluated open job streams (weighted templates ×
//!   poisson/diurnal/bursty arrivals) for horizon-bounded service runs.
//!
//! # Examples
//!
//! ```
//! use workload::{Benchmark, JobSpec, JobId, SizeClass};
//! use simcore::{SimRng, SimTime};
//!
//! let job = JobSpec::from_input_gb(
//!     JobId(0), Benchmark::wordcount(), 10.0, 16, SimTime::ZERO,
//! );
//! assert_eq!(job.num_maps(), 160); // 10 GB / 64 MB blocks
//! let mut rng = SimRng::seed_from(1);
//! let demand = job.map_demand(&mut rng);
//! assert!(demand.cpu_secs > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
mod benchmarks;
mod group;
mod job;
pub mod mix;
pub mod msd;
pub mod open;

pub use benchmarks::{Benchmark, BenchmarkKind};
pub use group::{GroupId, GroupTable};
pub use job::{JobId, JobSpec, SizeClass, TaskDemand, TaskId, TaskIndex};
