//! Stream-structured workload mixes for data-driven scenarios.
//!
//! The MSD generator ([`crate::msd`]) reproduces one fixed statistical mix;
//! scenario files need to *compose* workloads — a batch of deadline jobs at
//! 09:00 next to a trickle of ad-hoc queries, three tenants with different
//! job shapes, a diurnal double-peak. This module models such a workload as
//! a list of [`StreamSpec`]s: each stream owns a job template (benchmark,
//! size class, task counts) and an arrival law, and [`generate`] merges the
//! streams into one dense-`JobId` submission schedule.
//!
//! Determinism: each stream draws from its own fork of the workload RNG
//! (`fork_index("stream", i)`), so editing one stream in a scenario file
//! never perturbs the arrivals of another.

use simcore::{SimDuration, SimRng, SimTime};

use crate::arrival::DiurnalProfile;
use crate::{Benchmark, BenchmarkKind, JobId, JobSpec, SizeClass};

/// Which PUMA benchmark a stream's jobs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkChoice {
    /// Every job in the stream runs this benchmark.
    Fixed(BenchmarkKind),
    /// Jobs rotate through Wordcount → Grep → Terasort, like the MSD mix.
    Rotate,
}

/// When a stream's jobs arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamArrival {
    /// Memoryless arrivals at `rate_per_min`, offset by `start_s`.
    Poisson {
        /// Mean arrivals per minute.
        rate_per_min: f64,
        /// Seconds before the first gap starts accruing.
        start_s: f64,
    },
    /// One job every `period_s` seconds, starting at `start_s`.
    Uniform {
        /// Fixed gap between consecutive jobs, in seconds.
        period_s: f64,
        /// Submission time of the first job, in seconds.
        start_s: f64,
    },
    /// Explicit submission instants; job `i` arrives at `at_s[i % len]`,
    /// so a short list describes repeating batch waves.
    Batches {
        /// Batch submission times, in seconds.
        at_s: Vec<f64>,
    },
    /// Count-preserving diurnal placement over `[0, window_s]`.
    Diurnal {
        /// The time-varying intensity shape.
        profile: DiurnalProfile,
        /// Length of the placement window, in seconds.
        window_s: f64,
    },
}

/// One stream of a composed workload: a job template plus an arrival law.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Human-readable stream name (tenant, queue, batch, …).
    pub label: String,
    /// Benchmark selection for the stream's jobs.
    pub benchmark: BenchmarkChoice,
    /// Optional size class attached to every job (for fairness reports).
    pub size_class: Option<SizeClass>,
    /// Map tasks per job.
    pub maps: u32,
    /// Reduce tasks per job.
    pub reduces: u32,
    /// Number of jobs the stream submits.
    pub count: usize,
    /// When those jobs arrive.
    pub arrival: StreamArrival,
}

impl StreamSpec {
    /// Submission times for this stream's `count` jobs, unsorted for
    /// batches, otherwise non-decreasing.
    fn arrivals(&self, rng: &mut SimRng) -> Vec<SimTime> {
        match &self.arrival {
            StreamArrival::Poisson {
                rate_per_min,
                start_s,
            } => {
                assert!(
                    rate_per_min.is_finite() && *rate_per_min > 0.0,
                    "arrival rate must be positive"
                );
                assert!(
                    start_s.is_finite() && *start_s >= 0.0,
                    "stream start must be non-negative"
                );
                let rate_per_sec = rate_per_min / 60.0;
                let mut t = *start_s;
                (0..self.count)
                    .map(|_| {
                        t += rng.exponential(rate_per_sec);
                        SimTime::ZERO + SimDuration::from_secs_f64(t)
                    })
                    .collect()
            }
            StreamArrival::Uniform { period_s, start_s } => {
                assert!(
                    period_s.is_finite() && *period_s > 0.0,
                    "arrival period must be positive"
                );
                assert!(
                    start_s.is_finite() && *start_s >= 0.0,
                    "stream start must be non-negative"
                );
                (0..self.count)
                    .map(|i| {
                        SimTime::ZERO + SimDuration::from_secs_f64(start_s + i as f64 * period_s)
                    })
                    .collect()
            }
            StreamArrival::Batches { at_s } => {
                assert!(!at_s.is_empty(), "batch arrivals must be non-empty");
                for &t in at_s {
                    assert!(t.is_finite() && t >= 0.0, "batch time must be non-negative");
                }
                (0..self.count)
                    .map(|i| SimTime::ZERO + SimDuration::from_secs_f64(at_s[i % at_s.len()]))
                    .collect()
            }
            StreamArrival::Diurnal { profile, window_s } => {
                profile.sample_arrivals(self.count, SimDuration::from_secs_f64(*window_s), rng)
            }
        }
    }
}

/// Merges the streams into one workload with dense [`JobId`]s, ordered by
/// (submit time, stream index, intra-stream index).
///
/// # Panics
///
/// Panics if a stream has zero jobs or zero maps, or an arrival law has a
/// non-positive rate/period/window (see [`StreamArrival`]).
pub fn generate(streams: &[StreamSpec], rng: &mut SimRng) -> Vec<JobSpec> {
    let kinds = BenchmarkKind::ALL;
    let mut entries: Vec<(SimTime, usize, usize)> = Vec::new();
    for (si, stream) in streams.iter().enumerate() {
        assert!(stream.count > 0, "stream must submit at least one job");
        assert!(stream.maps > 0, "stream jobs must have at least one map");
        let mut stream_rng = rng.fork_index("stream", si);
        for (j, t) in stream.arrivals(&mut stream_rng).into_iter().enumerate() {
            entries.push((t, si, j));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    entries
        .into_iter()
        .enumerate()
        .map(|(id, (t, si, j))| {
            let stream = &streams[si];
            let kind = match stream.benchmark {
                BenchmarkChoice::Fixed(kind) => kind,
                BenchmarkChoice::Rotate => kinds[j % kinds.len()],
            };
            let mut spec = JobSpec::new(
                JobId(id as u64),
                Benchmark::of(kind),
                stream.maps,
                stream.reduces,
                t,
            );
            if let Some(class) = stream.size_class {
                spec = spec.with_size_class(class);
            }
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::DiurnalPeak;

    fn batch_stream(label: &str, at_s: Vec<f64>, count: usize) -> StreamSpec {
        StreamSpec {
            label: label.to_owned(),
            benchmark: BenchmarkChoice::Fixed(BenchmarkKind::Wordcount),
            size_class: Some(SizeClass::Small),
            maps: 8,
            reduces: 2,
            count,
            arrival: StreamArrival::Batches { at_s },
        }
    }

    #[test]
    fn merged_ids_are_dense_and_sorted_by_time() {
        let streams = [
            batch_stream("a", vec![100.0, 300.0], 4),
            StreamSpec {
                label: "b".to_owned(),
                benchmark: BenchmarkChoice::Rotate,
                size_class: None,
                maps: 4,
                reduces: 1,
                count: 5,
                arrival: StreamArrival::Uniform {
                    period_s: 90.0,
                    start_s: 0.0,
                },
            },
        ];
        let jobs = generate(&streams, &mut SimRng::seed_from(1));
        assert_eq!(jobs.len(), 9);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id(), JobId(i as u64));
        }
        assert!(jobs
            .windows(2)
            .all(|w| w[0].submit_at() <= w[1].submit_at()));
    }

    #[test]
    fn batches_repeat_in_waves() {
        let jobs = generate(&[batch_stream("a", vec![60.0, 600.0], 6)], &mut {
            SimRng::seed_from(2)
        });
        let first_wave = jobs
            .iter()
            .filter(|j| j.submit_at() == SimTime::from_secs(60))
            .count();
        let second_wave = jobs
            .iter()
            .filter(|j| j.submit_at() == SimTime::from_secs(600))
            .count();
        assert_eq!(first_wave, 3);
        assert_eq!(second_wave, 3);
    }

    #[test]
    fn rotate_covers_all_benchmarks() {
        let streams = [StreamSpec {
            label: "mix".to_owned(),
            benchmark: BenchmarkChoice::Rotate,
            size_class: None,
            maps: 4,
            reduces: 1,
            count: 6,
            arrival: StreamArrival::Uniform {
                period_s: 30.0,
                start_s: 0.0,
            },
        }];
        let jobs = generate(&streams, &mut SimRng::seed_from(3));
        for kind in BenchmarkKind::ALL {
            assert!(jobs.iter().any(|j| j.benchmark().kind() == kind));
        }
    }

    #[test]
    fn streams_are_independently_seeded() {
        // Appending a stream must not change the arrivals of earlier ones.
        let poisson = |label: &str| StreamSpec {
            label: label.to_owned(),
            benchmark: BenchmarkChoice::Rotate,
            size_class: None,
            maps: 4,
            reduces: 1,
            count: 5,
            arrival: StreamArrival::Poisson {
                rate_per_min: 2.0,
                start_s: 0.0,
            },
        };
        let solo = generate(&[poisson("a")], &mut SimRng::seed_from(4));
        let both = generate(
            &[poisson("a"), batch_stream("b", vec![1e6], 2)],
            &mut SimRng::seed_from(4),
        );
        let solo_times: Vec<SimTime> = solo.iter().map(|j| j.submit_at()).collect();
        let both_times: Vec<SimTime> = both.iter().take(5).map(|j| j.submit_at()).collect();
        assert_eq!(solo_times, both_times);
    }

    #[test]
    fn generation_is_deterministic() {
        let streams = [StreamSpec {
            label: "d".to_owned(),
            benchmark: BenchmarkChoice::Fixed(BenchmarkKind::Grep),
            size_class: None,
            maps: 6,
            reduces: 2,
            count: 12,
            arrival: StreamArrival::Diurnal {
                profile: DiurnalProfile {
                    base_per_min: 0.5,
                    peaks: vec![DiurnalPeak {
                        center_s: 240.0,
                        width_s: 60.0,
                        extra_per_min: 4.0,
                    }],
                },
                window_s: 600.0,
            },
        }];
        let a = generate(&streams, &mut SimRng::seed_from(5));
        let b = generate(&streams, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
        let c = generate(&streams, &mut SimRng::seed_from(6));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "stream must submit at least one job")]
    fn empty_stream_rejected() {
        generate(
            &[batch_stream("a", vec![0.0], 0)],
            &mut SimRng::seed_from(0),
        );
    }

    #[test]
    #[should_panic(expected = "arrival period must be positive")]
    fn zero_period_rejected() {
        let streams = [StreamSpec {
            label: "u".to_owned(),
            benchmark: BenchmarkChoice::Rotate,
            size_class: None,
            maps: 4,
            reduces: 1,
            count: 2,
            arrival: StreamArrival::Uniform {
                period_s: 0.0,
                start_s: 0.0,
            },
        }];
        generate(&streams, &mut SimRng::seed_from(0));
    }
}
