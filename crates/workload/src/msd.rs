//! The Microsoft-derived (MSD) synthetic workload of Table III.
//!
//! The paper models a month of Microsoft production traffic (174,000 jobs,
//! \[5\]) with three size classes, then scales the mix down to 87 jobs for its
//! 16-node testbed by dropping the largest 10 % and smallest 20 % of jobs.
//! Each generated job runs one of the three PUMA applications with an input
//! size drawn log-uniformly from its class range.
//!
//! | Class  | % jobs | Input size | # Maps        | # Reduces |
//! |--------|--------|-----------|----------------|-----------|
//! | Small  | 40 %   | 1–100 GB  | 16–1,600       | 4–128     |
//! | Medium | 20 %   | 0.1–1 TB  | 1,600–16,000   | 128–256   |
//! | Large  | 10 %   | 1–10 TB   | 16,000–160,000 | 256–1,024 |
//!
//! The remaining 30 % (the dropped tail/head) does not appear in the scaled
//! workload, so class shares are renormalized to 4:2:1.
//!
//! Because the simulation cluster — like the paper's testbed — is far
//! smaller than a production datacenter, the generator exposes a
//! `task_scale` divisor applied to per-job task counts (default 64). The
//! *mix shape* (class ratios, relative job sizes, benchmark rotation) is
//! preserved; only absolute task counts shrink.

use simcore::{SimDuration, SimRng, SimTime};

use crate::{Benchmark, BenchmarkKind, JobId, JobSpec, SizeClass};

/// Table III class parameters: input range (GB) and reduce-count range.
fn class_params(class: SizeClass) -> (f64, f64, u32, u32) {
    match class {
        SizeClass::Small => (1.0, 100.0, 4, 128),
        SizeClass::Medium => (102.4, 1024.0, 128, 256),
        SizeClass::Large => (1024.0, 10240.0, 256, 1024),
    }
}

/// Renormalized class shares after dropping the largest 10 % and smallest
/// 20 % of jobs (paper §V-C): Small : Medium : Large = 4 : 2 : 1.
pub const CLASS_WEIGHTS: [(SizeClass, f64); 3] = [
    (SizeClass::Small, 4.0),
    (SizeClass::Medium, 2.0),
    (SizeClass::Large, 1.0),
];

/// Configuration of the MSD generator.
///
/// # Examples
///
/// ```
/// use workload::msd::MsdConfig;
/// use simcore::SimRng;
///
/// let jobs = MsdConfig::paper_default().generate(&mut SimRng::seed_from(7));
/// assert_eq!(jobs.len(), 87);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MsdConfig {
    /// Number of jobs to generate (paper: 87).
    pub num_jobs: usize,
    /// Divisor applied to map/reduce counts so the workload fits a
    /// testbed-scale cluster. 1 reproduces Table III's raw magnitudes.
    pub task_scale: u32,
    /// Window over which job submissions arrive (Poisson process).
    pub submission_window: SimDuration,
}

impl MsdConfig {
    /// The paper's configuration: 87 jobs, scaled for a 16-node cluster,
    /// submitted over one hour.
    pub fn paper_default() -> Self {
        MsdConfig {
            num_jobs: 87,
            task_scale: 64,
            submission_window: SimDuration::from_mins(60),
        }
    }

    /// A miniature configuration for fast tests and examples.
    pub fn mini(num_jobs: usize) -> Self {
        MsdConfig {
            num_jobs,
            task_scale: 256,
            submission_window: SimDuration::from_mins(10),
        }
    }

    /// Generates the job mix.
    ///
    /// Jobs rotate through the three PUMA benchmarks so each class contains
    /// all three applications (the paper runs Wordcount, Terasort and Grep
    /// "with various input data sizes"). Submission times are sorted
    /// arrivals of a Poisson process over [`MsdConfig::submission_window`].
    ///
    /// # Panics
    ///
    /// Panics if `num_jobs` is zero or `task_scale` is zero.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<JobSpec> {
        assert!(self.num_jobs > 0, "num_jobs must be positive");
        assert!(self.task_scale > 0, "task_scale must be positive");

        // Sorted Poisson arrivals over the window.
        let window_secs = self.submission_window.as_secs_f64().max(1.0);
        let rate = self.num_jobs as f64 / window_secs;
        let mut arrivals = Vec::with_capacity(self.num_jobs);
        let mut t = 0.0;
        for _ in 0..self.num_jobs {
            t += rng.exponential(rate);
            arrivals.push(t.min(window_secs));
        }

        let weights: Vec<f64> = CLASS_WEIGHTS.iter().map(|&(_, w)| w).collect();
        let kinds = BenchmarkKind::ALL;

        (0..self.num_jobs)
            .map(|i| {
                let class =
                    CLASS_WEIGHTS[rng.weighted_index(&weights).expect("weights are positive")].0;
                let (lo_gb, hi_gb, lo_red, hi_red) = class_params(class);
                // Log-uniform input size within the class range.
                let input_gb = (rng.uniform_range(lo_gb.ln(), hi_gb.ln())).exp();
                let blocks = ((input_gb * 1024.0) / 64.0).ceil() as u32;
                let maps = (blocks / self.task_scale).max(4);
                let reduces_raw =
                    (rng.uniform_range((lo_red as f64).ln(), (hi_red as f64).ln())).exp() as u32;
                let reduces = (reduces_raw / self.task_scale).max(1);
                let kind = kinds[i % kinds.len()];
                let submit = SimTime::ZERO + SimDuration::from_secs_f64(arrivals[i]);
                JobSpec::new(JobId(i as u64), Benchmark::of(kind), maps, reduces, submit)
                    .with_size_class(class)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_jobs(seed: u64) -> Vec<JobSpec> {
        MsdConfig::paper_default().generate(&mut SimRng::seed_from(seed))
    }

    #[test]
    fn generates_requested_count() {
        assert_eq!(paper_jobs(1).len(), 87);
        assert_eq!(
            MsdConfig::mini(5).generate(&mut SimRng::seed_from(0)).len(),
            5
        );
    }

    #[test]
    fn class_mix_close_to_4_2_1() {
        // Aggregate over several seeds to smooth sampling noise.
        let mut counts = [0usize; 3];
        for seed in 0..10 {
            for j in paper_jobs(seed) {
                match j.size_class().unwrap() {
                    SizeClass::Small => counts[0] += 1,
                    SizeClass::Medium => counts[1] += 1,
                    SizeClass::Large => counts[2] += 1,
                }
            }
        }
        let total = (counts[0] + counts[1] + counts[2]) as f64;
        let small = counts[0] as f64 / total;
        let medium = counts[1] as f64 / total;
        let large = counts[2] as f64 / total;
        assert!((small - 4.0 / 7.0).abs() < 0.05, "small share {small}");
        assert!((medium - 2.0 / 7.0).abs() < 0.05, "medium share {medium}");
        assert!((large - 1.0 / 7.0).abs() < 0.05, "large share {large}");
    }

    #[test]
    fn larger_classes_have_more_tasks() {
        let jobs = paper_jobs(3);
        let mean_maps = |class: SizeClass| {
            let v: Vec<f64> = jobs
                .iter()
                .filter(|j| j.size_class() == Some(class))
                .map(|j| j.num_maps() as f64)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(mean_maps(SizeClass::Small) < mean_maps(SizeClass::Medium));
        assert!(mean_maps(SizeClass::Medium) < mean_maps(SizeClass::Large));
    }

    #[test]
    fn all_three_benchmarks_present() {
        let jobs = paper_jobs(4);
        for kind in BenchmarkKind::ALL {
            assert!(
                jobs.iter().any(|j| j.benchmark().kind() == kind),
                "missing {kind}"
            );
        }
    }

    #[test]
    fn submissions_sorted_within_window() {
        let cfg = MsdConfig::paper_default();
        let jobs = cfg.generate(&mut SimRng::seed_from(5));
        let window_end = SimTime::ZERO + cfg.submission_window;
        let mut last = SimTime::ZERO;
        for j in &jobs {
            assert!(j.submit_at() >= last, "arrivals must be sorted");
            assert!(j.submit_at() <= window_end);
            last = j.submit_at();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(paper_jobs(9), paper_jobs(9));
        assert_ne!(paper_jobs(9), paper_jobs(10));
    }

    #[test]
    fn job_ids_are_dense() {
        let jobs = paper_jobs(6);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id(), JobId(i as u64));
        }
    }

    #[test]
    fn every_job_has_tasks() {
        for j in paper_jobs(7) {
            assert!(j.num_maps() >= 4);
            assert!(j.num_reduces() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "num_jobs must be positive")]
    fn zero_jobs_rejected() {
        MsdConfig {
            num_jobs: 0,
            ..MsdConfig::paper_default()
        }
        .generate(&mut SimRng::seed_from(0));
    }

    #[test]
    #[should_panic(expected = "task_scale must be positive")]
    fn zero_scale_rejected() {
        MsdConfig {
            task_scale: 0,
            ..MsdConfig::paper_default()
        }
        .generate(&mut SimRng::seed_from(0));
    }
}
