//! Open (unbounded) job streams for service-mode runs.
//!
//! Batch workloads ([`crate::msd`], [`crate::mix`]) materialize a finite job
//! list up front; a service-mode run instead measures a scheduler under
//! *sustained* load over a horizon, where the job list is conceptually
//! infinite. This module models that as an [`OpenStreamSpec`] — a weighted
//! set of job templates fed by an [`OpenArrival`] law — and an
//! [`OpenStream`], the lazily-evaluated generator the engine pulls one job
//! at a time. A horizon run therefore never allocates the full job list,
//! and an overload regime (arrival rate beyond cluster capacity) is
//! representable without an unbounded `Vec`.
//!
//! Determinism: the stream owns a dedicated fork of the scenario RNG
//! (`fork("open")`), so pulling jobs lazily from inside the engine's event
//! loop draws exactly the same sequence as materializing them eagerly —
//! a property the repo's service tests pin against an oracle.

use simcore::{SimRng, SimTime};

use crate::arrival::{OpenArrival, OpenArrivalGen};
use crate::{Benchmark, BenchmarkKind, JobId, JobSpec, SizeClass};

/// One weighted job shape an open stream can emit.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenJobTemplate {
    /// Benchmark every job from this template runs.
    pub benchmark: BenchmarkKind,
    /// Optional size class attached to the jobs (for fairness reports).
    pub size_class: Option<SizeClass>,
    /// Map tasks per job.
    pub maps: u32,
    /// Reduce tasks per job.
    pub reduces: u32,
    /// Relative draw weight among the stream's templates.
    pub weight: f64,
}

/// An unbounded workload: a weighted template mix fed by an arrival law.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenStreamSpec {
    /// Human-readable stream name (shown in dashboards and reports).
    pub label: String,
    /// The arrival law jobs follow.
    pub arrival: OpenArrival,
    /// Weighted job templates; each arrival draws one.
    pub templates: Vec<OpenJobTemplate>,
}

impl OpenStreamSpec {
    /// Validates the spec, panicking with a descriptive message on the
    /// first violation.
    pub fn validate(&self) {
        self.arrival.validate();
        assert!(
            !self.templates.is_empty(),
            "open stream must have at least one template"
        );
        for t in &self.templates {
            assert!(t.maps > 0, "open-stream jobs must have at least one map");
            assert!(
                t.weight.is_finite() && t.weight > 0.0,
                "template weight must be positive"
            );
        }
    }

    /// Mean arrival rate of the spec at unit rate scale, in jobs/minute.
    pub fn mean_rate_per_min(&self) -> f64 {
        self.arrival.mean_rate_per_min()
    }
}

/// The lazily-evaluated generator behind an [`OpenStreamSpec`].
///
/// The engine pulls jobs one at a time with [`next_job`], supplying the
/// next dense [`JobId`]; submit times are non-decreasing. All randomness
/// comes from a private fork (`"open"`) of the RNG handed to [`new`], so
/// the sequence is independent of when (simulation-wise) the pulls happen.
///
/// [`next_job`]: OpenStream::next_job
/// [`new`]: OpenStream::new
#[derive(Debug)]
pub struct OpenStream {
    templates: Vec<OpenJobTemplate>,
    weights: Vec<f64>,
    arrivals: OpenArrivalGen,
    rng: SimRng,
    emitted: u64,
}

impl OpenStream {
    /// Builds a generator for `spec` with the arrival intensity multiplied
    /// by `rate_scale` (the utilization knob for sweeps). Forks `"open"`
    /// off `rng`; the caller's RNG advances by exactly one fork regardless
    /// of how many jobs are later pulled.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or `rate_scale` is not positive.
    pub fn new(spec: &OpenStreamSpec, rate_scale: f64, rng: &mut SimRng) -> Self {
        spec.validate();
        let weights = spec.templates.iter().map(|t| t.weight).collect();
        OpenStream {
            templates: spec.templates.clone(),
            weights,
            arrivals: OpenArrivalGen::new(spec.arrival.clone(), rate_scale),
            rng: rng.fork("open"),
            emitted: 0,
        }
    }

    /// Scaled mean arrival rate, in jobs/minute.
    pub fn mean_rate_per_min(&self) -> f64 {
        self.arrivals.mean_rate_per_min()
    }

    /// Number of jobs pulled so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Draws the next job of the stream. `id` is the dense id the engine
    /// assigns (its current job count); submit times never decrease.
    pub fn next_job(&mut self, id: JobId) -> JobSpec {
        let at: SimTime = self.arrivals.next(&mut self.rng);
        let ti = self
            .rng
            .weighted_index(&self.weights)
            .expect("validated templates are non-empty with positive weights");
        let t = &self.templates[ti];
        self.emitted += 1;
        let mut spec = JobSpec::new(id, Benchmark::of(t.benchmark), t.maps, t.reduces, at);
        if let Some(class) = t.size_class {
            spec = spec.with_size_class(class);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenStreamSpec {
        OpenStreamSpec {
            label: "svc".to_owned(),
            arrival: OpenArrival::Poisson { rate_per_min: 6.0 },
            templates: vec![
                OpenJobTemplate {
                    benchmark: BenchmarkKind::Wordcount,
                    size_class: Some(SizeClass::Small),
                    maps: 8,
                    reduces: 2,
                    weight: 3.0,
                },
                OpenJobTemplate {
                    benchmark: BenchmarkKind::Terasort,
                    size_class: None,
                    maps: 16,
                    reduces: 4,
                    weight: 1.0,
                },
            ],
        }
    }

    fn pull(n: usize, seed: u64, scale: f64) -> Vec<JobSpec> {
        let mut rng = SimRng::seed_from(seed);
        let mut stream = OpenStream::new(&spec(), scale, &mut rng);
        (0..n).map(|i| stream.next_job(JobId(i as u64))).collect()
    }

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let a = pull(100, 11, 1.0);
        let b = pull(100, 11, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, pull(100, 12, 1.0));
        assert!(a.windows(2).all(|w| w[0].submit_at() <= w[1].submit_at()));
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.id(), JobId(i as u64));
        }
    }

    #[test]
    fn templates_draw_by_weight() {
        let jobs = pull(400, 7, 1.0);
        let heavy = jobs
            .iter()
            .filter(|j| j.benchmark().kind() == BenchmarkKind::Wordcount)
            .count();
        // 3:1 weights → ~300 of 400; accept a generous band.
        assert!((250..=350).contains(&heavy), "heavy template drew {heavy}");
        assert!(jobs
            .iter()
            .any(|j| j.benchmark().kind() == BenchmarkKind::Terasort));
    }

    #[test]
    fn rate_scale_compresses_arrivals() {
        let slow = pull(200, 3, 0.5);
        let fast = pull(200, 3, 2.0);
        assert!(fast.last().unwrap().submit_at() < slow.last().unwrap().submit_at());
    }

    #[test]
    fn caller_rng_advances_by_one_fork_only() {
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        let mut sa = OpenStream::new(&spec(), 1.0, &mut a);
        let _ = OpenStream::new(&spec(), 1.0, &mut b);
        for i in 0..50 {
            let _ = sa.next_job(JobId(i));
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "open stream must have at least one template")]
    fn empty_templates_rejected() {
        let mut s = spec();
        s.templates.clear();
        OpenStream::new(&s, 1.0, &mut SimRng::seed_from(0));
    }

    #[test]
    #[should_panic(expected = "template weight must be positive")]
    fn zero_weight_rejected() {
        let mut s = spec();
        s.templates[0].weight = 0.0;
        OpenStream::new(&s, 1.0, &mut SimRng::seed_from(0));
    }
}
