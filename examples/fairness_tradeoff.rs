//! Explore the paper's Fig. 12(a) knob: the weighting parameter β trades
//! energy savings against job fairness.
//!
//! ```text
//! cargo run --release --example fairness_tradeoff
//! ```

use baselines::FairScheduler;
use cluster::Fleet;
use eant::{EAntConfig, EAntScheduler};
use hadoop_sim::{Engine, EngineConfig, RunResult};
use simcore::stats::OnlineStats;
use simcore::SimRng;
use workload::msd::MsdConfig;
use workload::JobSpec;

/// A production-shaped mix of short and long jobs — the situation where
/// fairness matters. Reuses the Table III MSD generator.
fn workload(seed: u64) -> Vec<JobSpec> {
    MsdConfig {
        num_jobs: 30,
        task_scale: 64,
        submission_window: simcore::SimDuration::from_mins(12),
    }
    .generate(&mut SimRng::seed_from(seed).fork("msd"))
}

const SEEDS: [u64; 4] = [2015, 7, 42, 1234];

fn run_with_beta(beta: f64, seed: u64) -> RunResult {
    let cfg = EAntConfig {
        beta,
        ..EAntConfig::paper_default()
    };
    let mut engine = Engine::new(Fleet::paper_evaluation(), EngineConfig::default(), seed);
    engine.submit_jobs(workload(seed));
    let mut eant = EAntScheduler::new(cfg, seed);
    engine.run(&mut eant)
}

/// Spread of per-job slowdowns (completion / ideal serial share) — lower
/// spread means fairer treatment.
fn slowdown_spread(result: &RunResult) -> f64 {
    let mut stats = OnlineStats::new();
    for j in &result.jobs {
        if let Some(ct) = j.completion_time() {
            stats.push(ct.as_secs_f64() / j.reference_work_secs.max(1.0));
        }
    }
    stats.std_dev() / stats.mean().max(1e-9)
}

fn main() {
    let mut fair_energy = 0.0;
    for &seed in &SEEDS {
        let mut engine = Engine::new(Fleet::paper_evaluation(), EngineConfig::default(), seed);
        engine.submit_jobs(workload(seed));
        fair_energy +=
            engine.run(&mut FairScheduler::new()).total_energy_joules() / SEEDS.len() as f64;
    }
    println!(
        "baseline (Fair Scheduler, {}-seed mean): {:.1} kJ\n",
        SEEDS.len(),
        fair_energy / 1000.0
    );

    println!(
        "{:>5} {:>16} {:>18} {:>20}",
        "beta", "energy (kJ)", "saving vs Fair", "slowdown spread"
    );
    for beta in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut energy = 0.0;
        let mut spread = 0.0;
        for &seed in &SEEDS {
            let result = run_with_beta(beta, seed);
            energy += result.total_energy_joules() / SEEDS.len() as f64;
            spread += slowdown_spread(&result) / SEEDS.len() as f64;
        }
        let saving = (fair_energy - energy) / fair_energy * 100.0;
        println!(
            "{beta:>5.1} {:>16.1} {:>17.1}% {:>20.3}",
            energy / 1000.0,
            saving,
            spread
        );
    }
    println!("\nhigher beta = stronger fairness/locality heuristic (Eq. 8);");
    println!("the paper's Fig. 12(a) shows energy savings peak at small beta");
    println!("while fairness keeps improving with larger beta.");
}
