//! Build a custom heterogeneous cluster — including a hardware profile of
//! your own — and compare E-Ant against the Fair Scheduler and Tarazu on
//! it.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use baselines::{FairScheduler, TarazuScheduler};
use cluster::{Fleet, MachineProfile, PowerModel};
use eant::{EAntConfig, EAntScheduler};
use hadoop_sim::{Engine, EngineConfig, RunResult, Scheduler};
use simcore::{SimDuration, SimTime};
use workload::{Benchmark, JobId, JobSpec};

fn build_fleet() -> Fleet {
    // A custom low-power ARM-style node alongside the stock profiles.
    let arm = MachineProfile::new(
        "ARMBlade",
        16,
        8,
        PowerModel::new(12.0, 20.0),
        0.5, // half the per-core speed of the reference desktop
        0.8,
    )
    .expect("valid profile");

    Fleet::builder()
        .add(cluster::profiles::desktop(), 4)
        .add(cluster::profiles::t420(), 2)
        .add(arm, 4)
        .rack_size(5)
        .build()
        .expect("non-empty fleet")
}

fn workload() -> Vec<JobSpec> {
    // Twelve overlapping jobs: enough concurrency that the schedulers'
    // placement decisions actually compete.
    let mut jobs = Vec::new();
    for i in 0..12 {
        let bench = match i % 3 {
            0 => Benchmark::wordcount(),
            1 => Benchmark::grep(),
            _ => Benchmark::terasort(),
        };
        jobs.push(JobSpec::new(
            JobId(i),
            bench,
            160,
            8,
            SimTime::ZERO + SimDuration::from_secs(i * 30),
        ));
    }
    jobs
}

fn run(scheduler: &mut dyn Scheduler) -> RunResult {
    let mut engine = Engine::new(build_fleet(), EngineConfig::default(), 7);
    engine.submit_jobs(workload());
    engine.run(scheduler)
}

fn main() {
    let fair = run(&mut FairScheduler::new());
    let tarazu = run(&mut TarazuScheduler::new(7));
    let eant = run(&mut EAntScheduler::new(EAntConfig::paper_default(), 7));

    println!(
        "{:<10} {:>14} {:>16}",
        "scheduler", "energy (kJ)", "makespan (min)"
    );
    for r in [&fair, &tarazu, &eant] {
        println!(
            "{:<10} {:>14.1} {:>16.1}",
            r.scheduler,
            r.total_energy_joules() / 1000.0,
            r.makespan.as_mins_f64()
        );
    }

    println!("\nE-Ant energy by machine type (note the ARM blades):");
    for (profile, joules) in eant.energy_by_profile() {
        println!("  {profile:<9} {:>8.1} kJ", joules / 1000.0);
    }
    let saving =
        (fair.total_energy_joules() - eant.total_energy_joules()) / fair.total_energy_joules();
    println!(
        "\nE-Ant saves {:.1}% vs Fair on this cluster",
        saving * 100.0
    );
}
