//! Generate the Microsoft-derived (MSD) workload of Table III, inspect its
//! composition, and run it under all three schedulers.
//!
//! ```text
//! cargo run --release --example msd_workload
//! ```

use baselines::{FairScheduler, TarazuScheduler};
use cluster::Fleet;
use eant::{EAntConfig, EAntScheduler};
use hadoop_sim::{Engine, EngineConfig, Scheduler};
use simcore::SimRng;
use workload::msd::MsdConfig;
use workload::SizeClass;

fn main() {
    // Generate a scaled-down MSD mix (fewer jobs than the paper's 87 so
    // the example finishes instantly; use MsdConfig::paper_default() for
    // the real thing).
    let cfg = MsdConfig {
        num_jobs: 30,
        task_scale: 64,
        submission_window: simcore::SimDuration::from_mins(12),
    };
    let jobs = cfg.generate(&mut SimRng::seed_from(2015).fork("msd"));

    println!("generated {} jobs:", jobs.len());
    for class in [SizeClass::Small, SizeClass::Medium, SizeClass::Large] {
        let members: Vec<_> = jobs
            .iter()
            .filter(|j| j.size_class() == Some(class))
            .collect();
        let tasks: u32 = members.iter().map(|j| j.num_tasks()).sum();
        println!("  {class:?}: {} jobs, {} tasks total", members.len(), tasks);
    }

    // Run the same workload under each scheduler.
    println!(
        "\n{:<10} {:>12} {:>15} {:>12}",
        "scheduler", "energy (kJ)", "makespan (min)", "tasks"
    );
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FairScheduler::new()),
        Box::new(TarazuScheduler::new(2015)),
        Box::new(EAntScheduler::new(EAntConfig::paper_default(), 2015)),
    ];
    let mut fair_energy = None;
    for mut sched in schedulers {
        let mut engine = Engine::new(Fleet::paper_evaluation(), EngineConfig::default(), 2015);
        engine.submit_jobs(jobs.clone());
        let result = engine.run(sched.as_mut());
        println!(
            "{:<10} {:>12.1} {:>15.1} {:>12}",
            result.scheduler,
            result.total_energy_joules() / 1000.0,
            result.makespan.as_mins_f64(),
            result.total_tasks
        );
        if result.scheduler == "Fair" {
            fair_energy = Some(result.total_energy_joules());
        } else if result.scheduler == "E-Ant" {
            if let Some(fair) = fair_energy {
                println!(
                    "\nE-Ant energy saving vs Fair: {:.1}% (paper reports 17% at full scale)",
                    (fair - result.total_energy_joules()) / fair * 100.0
                );
            }
        }
    }
}
