//! Quickstart: run E-Ant on the paper's 16-node cluster and print what it
//! did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster::Fleet;
use eant::{EAntConfig, EAntScheduler};
use hadoop_sim::{Engine, EngineConfig};
use simcore::SimTime;
use workload::{Benchmark, JobId, JobSpec};

fn main() {
    // 1. The cluster: the paper's §V-B evaluation fleet — 8 desktops,
    //    3 T110s, 2 T420s, a T320, a T620 and an Atom.
    let fleet = Fleet::paper_evaluation();
    println!(
        "cluster: {} machines, {} map + {} reduce slots",
        fleet.len(),
        fleet.total_map_slots(),
        fleet.total_reduce_slots()
    );

    // 2. A small mixed workload: one CPU-bound and one I/O-bound job.
    let jobs = vec![
        JobSpec::new(JobId(0), Benchmark::wordcount(), 128, 8, SimTime::ZERO),
        JobSpec::new(JobId(1), Benchmark::terasort(), 128, 8, SimTime::ZERO),
    ];

    // 3. The engine (heartbeats, slots, shuffle, noise) plus E-Ant with the
    //    paper's configuration.
    let mut engine = Engine::new(fleet, EngineConfig::default(), 42);
    engine.submit_jobs(jobs);
    let mut eant = EAntScheduler::new(EAntConfig::paper_default(), 42);
    let result = engine.run(&mut eant);

    // 4. What happened.
    println!(
        "ran {} tasks in {:.1} simulated minutes ({} assignment decisions)",
        result.total_tasks,
        result.makespan.as_mins_f64(),
        eant.decisions()
    );
    println!(
        "total energy: {:.1} kJ",
        result.total_energy_joules() / 1000.0
    );
    println!("\nenergy by machine type:");
    for (profile, joules) in result.energy_by_profile() {
        println!("  {profile:<8} {:>8.1} kJ", joules / 1000.0);
    }
    println!("\ntasks per machine type and benchmark:");
    for ((profile, bench), count) in result.tasks_by_profile_and_benchmark() {
        println!("  {profile:<8} {bench:<10} {count:>5}");
    }
}
