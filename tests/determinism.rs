//! Determinism of the experiment sweep layer: the same seed must produce
//! an *identical* serialized [`RunResult`] regardless of how many worker
//! threads execute the sweep, and across consecutive runs in one process.
//!
//! Identity is checked on the canonical JSON from
//! [`metrics::emit::run_result_json`], which serializes every field of the
//! result (per-task reports included when recorded), so any hidden
//! nondeterminism — iteration-order leaks, shared RNG state, float
//! accumulation order — shows up as a byte difference.
//!
//! [`RunResult`]: hadoop_sim::RunResult

use eant::EAntConfig;
use experiments::common::{parallel_runs_with_workers, Scenario, SchedulerKind};
use metrics::emit::run_result_json;
use simcore::SimDuration;
use workload::msd::MsdConfig;

/// A deliberately small scenario so the 3-sweep matrix stays fast.
fn small_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::fast(seed);
    s.msd = MsdConfig {
        num_jobs: 6,
        task_scale: 32,
        submission_window: SimDuration::from_mins(4),
    };
    s.engine.record_reports = true;
    s
}

/// Runs the (scheduler × seed) sweep on `workers` threads and serializes
/// every result.
fn sweep(workers: usize) -> Vec<String> {
    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::Tarazu,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    let seeds = [11u64, 29];
    let tasks: Vec<_> = kinds
        .iter()
        .flat_map(|kind| {
            seeds.iter().map(move |&seed| {
                let kind = kind.clone();
                move || small_scenario(seed).run(&kind)
            })
        })
        .collect();
    parallel_runs_with_workers(workers, tasks)
        .iter()
        .map(run_result_json)
        .collect()
}

/// One worker and four workers must produce byte-identical results in the
/// same order: the pool decides only *when* a task runs, never *what* it
/// computes.
#[test]
fn sweep_is_thread_count_invariant() {
    let single = sweep(1);
    let multi = sweep(4);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a, b, "run {i} differs between 1-thread and 4-thread sweeps");
    }
}

/// Two consecutive sweeps in one process agree: no global mutable state
/// leaks between runs.
#[test]
fn consecutive_sweeps_agree() {
    let first = sweep(2);
    let second = sweep(2);
    assert_eq!(first, second);
}

/// Serialization itself is a faithful witness: distinct seeds give
/// distinct bytes (guards against an emitter that collapses fields).
#[test]
fn distinct_seeds_serialize_distinctly() {
    let kind = SchedulerKind::Fair;
    let a = run_result_json(&small_scenario(11).run(&kind));
    let b = run_result_json(&small_scenario(12).run(&kind));
    assert_ne!(a, b);
}

/// An empty sweep and a worker surplus are both fine.
#[test]
fn pool_edge_cases() {
    let none: Vec<fn() -> u32> = Vec::new();
    assert!(parallel_runs_with_workers(3, none).is_empty());
    let tasks: Vec<_> = (0..3u32).map(|i| move || i * 2).collect();
    assert_eq!(parallel_runs_with_workers(8, tasks), vec![0, 2, 4]);
}

/// Observers are passive: attaching trace sinks and streaming consumers to
/// both engine and scheduler must leave the serialized result byte-identical
/// to an untraced run. Guards against an observer ever feeding back into
/// scheduling or RNG state.
#[test]
fn tracing_does_not_perturb_runs() {
    use hadoop_sim::trace::SharedObserver;
    use metrics::observers::StreamingRunStats;
    use metrics::trace::JsonlTraceSink;

    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::Tarazu,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    for kind in kinds {
        let scenario = small_scenario(11);
        let plain = run_result_json(&scenario.run(&kind));

        let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
        let stats = SharedObserver::new(StreamingRunStats::new(16));
        let sink_engine = sink.clone();
        let sink_scheduler = sink.clone();
        let stats_handle = stats.clone();
        let traced = scenario.run_observed(&kind, move |engine, scheduler| {
            engine.attach_observer(Box::new(sink_engine));
            engine.attach_observer(Box::new(stats_handle));
            scheduler.attach_observer(Box::new(sink_scheduler));
        });
        assert_eq!(
            plain,
            run_result_json(&traced),
            "{} run diverges under tracing",
            kind.label()
        );
        assert!(sink.with(|s| s.lines()) > 0, "trace sink saw no events");
        stats
            .with(|s| s.matches(&traced))
            .expect("streaming aggregates match the traced run");
    }
}
