//! Determinism of the experiment sweep layer: the same seed must produce
//! an *identical* serialized [`RunResult`] regardless of how many worker
//! threads execute the sweep, and across consecutive runs in one process.
//!
//! Identity is checked on the canonical JSON from
//! [`metrics::emit::run_result_json`], which serializes every field of the
//! result (per-task reports included, collected via a streaming report
//! observer), so any hidden
//! nondeterminism — iteration-order leaks, shared RNG state, float
//! accumulation order — shows up as a byte difference.
//!
//! [`RunResult`]: hadoop_sim::RunResult

use eant::EAntConfig;
use experiments::common::{parallel_runs_with_workers, Scenario, SchedulerKind};
use hadoop_sim::trace::{SharedObserver, VecRecorder};
use hadoop_sim::{RunResult, TaskReport};
use metrics::emit::{run_result_json, ToJson};
use simcore::SimDuration;
use workload::msd::MsdConfig;

/// A deliberately small scenario so the 3-sweep matrix stays fast.
fn small_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::fast(seed);
    s.msd = MsdConfig {
        num_jobs: 6,
        task_scale: 32,
        submission_window: SimDuration::from_mins(4),
    };
    s
}

/// Runs the scenario with a streaming report recorder attached, returning
/// the result and the collected reports so the serialized bytes still
/// cover per-task reports (the result carries no report buffer of its
/// own). The recorder is built inside the call, keeping closures over this
/// function `Send` for the worker pool.
fn run_with_reports(scenario: &Scenario, kind: &SchedulerKind) -> (RunResult, Vec<TaskReport>) {
    let recorder: SharedObserver<VecRecorder<TaskReport>> = SharedObserver::new(VecRecorder::new());
    let handle = recorder.clone();
    let result = scenario.run_observed(kind, move |engine, _| {
        engine.attach_report_observer(Box::new(handle));
    });
    let reports = recorder
        .try_into_inner()
        .unwrap_or_else(|_| panic!("engine dropped its observer handle"))
        .into_events()
        .into_iter()
        .map(|(_, report)| report)
        .collect();
    (result, reports)
}

/// Canonical bytes of a run: the result JSON followed by one JSON line per
/// streamed task report, so report-level nondeterminism is a witness too.
fn run_bytes((result, reports): &(RunResult, Vec<TaskReport>)) -> String {
    let mut out = run_result_json(result);
    for report in reports {
        out.push('\n');
        out.push_str(&report.to_json().render());
    }
    out
}

/// Runs the (scheduler × seed) sweep on `workers` threads and serializes
/// every result.
fn sweep(workers: usize) -> Vec<String> {
    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::Tarazu,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    let seeds = [11u64, 29];
    let tasks: Vec<_> = kinds
        .iter()
        .flat_map(|kind| {
            seeds.iter().map(move |&seed| {
                let kind = kind.clone();
                move || run_with_reports(&small_scenario(seed), &kind)
            })
        })
        .collect();
    parallel_runs_with_workers(workers, tasks)
        .iter()
        .map(run_bytes)
        .collect()
}

/// One worker and four workers must produce byte-identical results in the
/// same order: the pool decides only *when* a task runs, never *what* it
/// computes.
#[test]
fn sweep_is_thread_count_invariant() {
    let single = sweep(1);
    let multi = sweep(4);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a, b, "run {i} differs between 1-thread and 4-thread sweeps");
    }
}

/// Two consecutive sweeps in one process agree: no global mutable state
/// leaks between runs.
#[test]
fn consecutive_sweeps_agree() {
    let first = sweep(2);
    let second = sweep(2);
    assert_eq!(first, second);
}

/// Serialization itself is a faithful witness: distinct seeds give
/// distinct bytes (guards against an emitter that collapses fields).
#[test]
fn distinct_seeds_serialize_distinctly() {
    let kind = SchedulerKind::Fair;
    let a = run_bytes(&run_with_reports(&small_scenario(11), &kind));
    let b = run_bytes(&run_with_reports(&small_scenario(12), &kind));
    assert_ne!(a, b);
}

/// An empty sweep and a worker surplus are both fine.
#[test]
fn pool_edge_cases() {
    let none: Vec<fn() -> u32> = Vec::new();
    assert!(parallel_runs_with_workers(3, none).is_empty());
    let tasks: Vec<_> = (0..3u32).map(|i| move || i * 2).collect();
    assert_eq!(parallel_runs_with_workers(8, tasks), vec![0, 2, 4]);
}

/// Observers are passive: attaching trace sinks and streaming consumers to
/// both engine and scheduler must leave the serialized result byte-identical
/// to an untraced run. Guards against an observer ever feeding back into
/// scheduling or RNG state.
#[test]
fn tracing_does_not_perturb_runs() {
    use hadoop_sim::trace::SharedObserver;
    use metrics::observers::StreamingRunStats;
    use metrics::trace::JsonlTraceSink;

    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::Tarazu,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    for kind in kinds {
        let scenario = small_scenario(11);
        let plain = run_result_json(&scenario.run(&kind));

        let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
        let stats = SharedObserver::new(StreamingRunStats::new(16));
        let sink_engine = sink.clone();
        let sink_scheduler = sink.clone();
        let stats_handle = stats.clone();
        let traced = scenario.run_observed(&kind, move |engine, scheduler| {
            engine.attach_observer(Box::new(sink_engine));
            engine.attach_observer(Box::new(stats_handle));
            scheduler.attach_observer(Box::new(sink_scheduler));
        });
        assert_eq!(
            plain,
            run_result_json(&traced),
            "{} run diverges under tracing",
            kind.label()
        );
        assert!(sink.with(|s| s.lines()) > 0, "trace sink saw no events");
        stats
            .with(|s| s.matches(&traced))
            .expect("streaming aggregates match the traced run");
    }
}

/// A faulted variant of the small scenario: crashes, retries and
/// blacklisting all active.
fn faulted_scenario(seed: u64) -> Scenario {
    let mut s = small_scenario(seed);
    s.engine.fault = hadoop_sim::FaultConfig {
        crash_mtbf: SimDuration::from_mins(30),
        crash_downtime: SimDuration::from_mins(1),
        task_failure_prob: 0.05,
        blacklist_threshold: 10,
        ..hadoop_sim::FaultConfig::none()
    };
    s
}

/// Runs the faulted (scheduler × seed) sweep on `workers` threads. One
/// seed keeps the 3× sweep matrix affordable: crashed runs take several
/// times longer to drain than clean ones.
fn faulted_sweep(workers: usize) -> Vec<String> {
    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::Tarazu,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    let seeds = [11u64];
    let tasks: Vec<_> = kinds
        .iter()
        .flat_map(|kind| {
            seeds.iter().map(move |&seed| {
                let kind = kind.clone();
                move || run_with_reports(&faulted_scenario(seed), &kind)
            })
        })
        .collect();
    parallel_runs_with_workers(workers, tasks)
        .iter()
        .map(run_bytes)
        .collect()
}

/// Fault injection draws from its own forked RNG stream, so faulted runs
/// are exactly as deterministic as clean ones: thread-count invariant and
/// repeatable within a process.
#[test]
fn faulted_sweep_is_deterministic() {
    let single = faulted_sweep(1);
    let multi = faulted_sweep(4);
    assert_eq!(single, multi, "faulted sweep differs across thread counts");
    let again = faulted_sweep(4);
    assert_eq!(
        multi, again,
        "faulted sweep differs across consecutive runs"
    );
    // The injected faults actually fired — otherwise this test proves
    // nothing about the fault paths.
    assert!(
        single
            .iter()
            .any(|json| !json.contains("\"task_failures\":0,")),
        "no run recorded any task failure"
    );
}

/// Serializes a decision-traced run of the small scenario to canonical
/// JSONL trace bytes (engine + scheduler streams).
fn decision_trace_bytes(seed: u64, kind: &SchedulerKind) -> Vec<u8> {
    use hadoop_sim::trace::SharedObserver;
    use metrics::trace::JsonlTraceSink;

    let mut scenario = small_scenario(seed);
    scenario.engine.trace_decisions = true;
    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let sink_engine = sink.clone();
    let sink_scheduler = sink.clone();
    let _ = scenario.run_observed(kind, move |engine, scheduler| {
        engine.attach_observer(Box::new(sink_engine));
        scheduler.attach_observer(Box::new(sink_scheduler));
    });
    sink.try_into_inner()
        .expect("sink still shared")
        .finish()
        .expect("Vec<u8> writes cannot fail")
}

/// Decision-traced runs are exactly as deterministic as plain ones: the
/// full trace bytes — `assignment_decision` payloads included, with their
/// float-valued τ/η/probability fields — are thread-count invariant and
/// repeatable. This is the guarantee that makes `trace-diff` meaningful:
/// any byte difference between two traces is behavioral, never scheduling
/// jitter.
#[test]
fn decision_traces_are_thread_count_invariant() {
    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    let sweep = |workers: usize| -> Vec<Vec<u8>> {
        let tasks: Vec<_> = kinds
            .iter()
            .map(|kind| {
                let kind = kind.clone();
                move || decision_trace_bytes(11, &kind)
            })
            .collect();
        parallel_runs_with_workers(workers, tasks)
    };
    let single = sweep(1);
    let multi = sweep(4);
    assert_eq!(
        single, multi,
        "decision traces differ between 1-thread and 4-thread sweeps"
    );
    for (kind, bytes) in kinds.iter().zip(&single) {
        let text = std::str::from_utf8(bytes).expect("trace is UTF-8");
        assert!(
            text.contains("\"type\":\"assignment_decision\""),
            "{} trace carries no decision events",
            kind.label()
        );
    }
}

/// A faulted trace round-trips through the JSONL codec: re-encoding every
/// parsed line reproduces the original bytes, including the five fault
/// event kinds.
#[test]
fn faulted_trace_round_trips_through_codec() {
    use hadoop_sim::trace::SharedObserver;
    use metrics::trace::{parse_trace_line, trace_line, JsonlTraceSink};

    let scenario = faulted_scenario(11);
    let kind = SchedulerKind::EAnt(EAntConfig::paper_default());
    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let handle = sink.clone();
    let _ = scenario.run_observed(&kind, move |engine, _| {
        engine.attach_observer(Box::new(handle));
    });
    let bytes = sink
        .try_into_inner()
        .expect("sink still shared")
        .finish()
        .expect("flush");
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let mut kinds_seen = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let (at, event) = parse_trace_line(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        kinds_seen.insert(event.kind());
        assert_eq!(
            trace_line(at, &event),
            line,
            "line {} does not round-trip",
            i + 1
        );
    }
    for kind in ["task_failed", "machine_failed", "map_output_lost"] {
        assert!(
            kinds_seen.contains(kind),
            "faulted trace never emitted {kind}; saw {kinds_seen:?}"
        );
    }
}
