//! End-to-end integration: MSD workload → Hadoop engine → E-Ant, checking
//! cross-crate invariants a unit test cannot see.

use cluster::Fleet;
use eant::{EAntConfig, EAntScheduler};
use hadoop_sim::trace::{SharedObserver, VecRecorder};
use hadoop_sim::{Engine, EngineConfig, NoiseConfig, RunResult, TaskReport};
use simcore::{SimDuration, SimRng};
use workload::msd::MsdConfig;

fn msd_run(seed: u64, noise: NoiseConfig) -> (RunResult, Vec<TaskReport>) {
    let jobs = MsdConfig {
        num_jobs: 20,
        task_scale: 96,
        submission_window: SimDuration::from_mins(10),
    }
    .generate(&mut SimRng::seed_from(seed).fork("msd"));
    let total_tasks: u32 = jobs.iter().map(|j| j.num_tasks()).sum();

    let cfg = EngineConfig {
        noise,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
    engine.submit_jobs(jobs);
    // Reports arrive through the streaming observer channel — the engine
    // buffers none of its own.
    let recorder: SharedObserver<VecRecorder<TaskReport>> = SharedObserver::new(VecRecorder::new());
    engine.attach_report_observer(Box::new(recorder.clone()));
    let mut eant = EAntScheduler::new(EAntConfig::paper_default(), seed);
    let result = engine.run(&mut eant);
    drop(engine); // releases the engine's clone of the recorder
    let reports: Vec<TaskReport> = recorder
        .try_into_inner()
        .unwrap_or_else(|_| panic!("engine dropped its observer handle"))
        .into_events()
        .into_iter()
        .map(|(_, report)| report)
        .collect();
    assert_eq!(result.total_tasks, u64::from(total_tasks));
    (result, reports)
}

#[test]
fn msd_workload_drains_under_eant() {
    let (r, _) = msd_run(1, NoiseConfig::paper_default());
    assert!(r.drained);
    assert!(r.jobs.iter().all(|j| j.finished_at.is_some()));
    assert!(r.makespan > SimDuration::ZERO);
}

#[test]
fn task_conservation_across_layers() {
    let (r, reports) = msd_run(2, NoiseConfig::none());
    // Engine counter == sum of per-machine counters == number of reports.
    let machine_total: u64 = r.machines.iter().map(|m| m.total_tasks()).sum();
    assert_eq!(machine_total, r.total_tasks);
    assert_eq!(reports.len() as u64, r.total_tasks);
    // Interval assignment counts also conserve tasks.
    let assigned: u64 = r
        .intervals
        .iter()
        .flat_map(|s| s.assignments.values())
        .flat_map(|v| v.iter())
        .sum();
    assert_eq!(assigned, r.total_tasks);
}

#[test]
fn energy_accounting_is_consistent() {
    let (r, _) = msd_run(3, NoiseConfig::none());
    for m in &r.machines {
        assert!(m.energy_joules > 0.0);
        assert!(
            (m.idle_joules + m.workload_joules - m.energy_joules).abs() < 1e-6,
            "idle + workload must equal total on {}",
            m.machine
        );
        // Nothing can draw less than idle power for the whole run.
        assert!(m.idle_joules > 0.0);
    }
    // The energy series ends at the fleet total.
    let last = r.energy_series.last_value().expect("series non-empty");
    assert!((last - r.total_energy_joules()).abs() < 1e-6);
}

#[test]
fn reports_are_well_formed() {
    let (_, reports) = msd_run(4, NoiseConfig::paper_default());
    for rep in &reports {
        assert!(rep.finished_at > rep.started_at, "{}", rep.task);
        assert!(!rep.samples.is_empty(), "{}", rep.task);
        let sampled: f64 = rep.samples.iter().map(|s| s.dt_secs).sum();
        let dur = rep.execution_time().as_secs_f64();
        assert!(
            (sampled - dur).abs() < 0.01 * dur.max(1.0),
            "samples must tile the execution time: {sampled} vs {dur}"
        );
        assert!(rep.true_energy_joules > 0.0);
        assert!(rep
            .samples
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.utilization)));
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let (a, a_reports) = msd_run(5, NoiseConfig::paper_default());
    let (b, b_reports) = msd_run(5, NoiseConfig::paper_default());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_energy_joules(), b.total_energy_joules());
    assert_eq!(a_reports.len(), b_reports.len());
}

#[test]
fn different_seeds_differ() {
    let (a, _) = msd_run(6, NoiseConfig::paper_default());
    let (b, _) = msd_run(7, NoiseConfig::paper_default());
    assert_ne!(a.makespan, b.makespan);
}

#[test]
fn pheromone_state_is_released_when_jobs_finish() {
    let jobs = MsdConfig {
        num_jobs: 8,
        task_scale: 128,
        submission_window: SimDuration::from_mins(5),
    }
    .generate(&mut SimRng::seed_from(9).fork("msd"));
    let mut engine = Engine::new(Fleet::paper_evaluation(), EngineConfig::default(), 9);
    engine.submit_jobs(jobs);
    let mut eant = EAntScheduler::new(EAntConfig::paper_default(), 9);
    let result = engine.run(&mut eant);
    assert!(result.drained);
    assert_eq!(
        eant.pheromone_table().expect("initialized").jobs(),
        0,
        "finished colonies must release their rows"
    );
}
