//! Integration tests for the Eq. 2 energy model against the simulator's
//! ground-truth meter (the Fig. 4 claim), and for the noise-robustness role
//! of the exchange strategies (Fig. 10's premise).

use cluster::{profiles, Fleet, SlotKind};
use eant::{EnergyModel, ExchangeStrategy, TaskAnalyzer, TaskEnergyRecord};
use hadoop_sim::trace::{SharedObserver, VecRecorder};
use hadoop_sim::{Engine, EngineConfig, GreedyScheduler, NoiseConfig, RunResult};
use simcore::stats::OnlineStats;
use simcore::SimTime;
use workload::{Benchmark, BenchmarkKind, GroupId, JobId, JobSpec};

/// Runs map-only waves of `kind` on one fully-map-slotted machine,
/// returning the result, the streamed task reports and the Eq. 2 model.
fn saturated_run(
    kind: BenchmarkKind,
    noise: NoiseConfig,
    seed: u64,
) -> (RunResult, Vec<hadoop_sim::TaskReport>, EnergyModel) {
    let profile = profiles::desktop().with_slots(6, 0);
    let model = EnergyModel::from_profile(&profile);
    let fleet = Fleet::builder().add(profile, 1).build().unwrap();
    let cfg = EngineConfig {
        noise,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(fleet, cfg, seed);
    // Collect reports via the streaming observer channel — the engine
    // buffers none of its own.
    let recorder = SharedObserver::new(VecRecorder::new());
    engine.attach_report_observer(Box::new(recorder.clone()));
    engine.submit_jobs(
        (0..3)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    Benchmark::of(kind),
                    48,
                    0,
                    SimTime::from_secs(i * 30),
                )
            })
            .collect(),
    );
    let result = engine.run(&mut GreedyScheduler::new());
    drop(engine); // releases the engine's clone of the recorder
    let reports = recorder
        .try_into_inner()
        .unwrap_or_else(|_| panic!("engine dropped its observer handle"))
        .into_events()
        .into_iter()
        .map(|(_, report)| report)
        .collect();
    (result, reports, model)
}

#[test]
fn estimates_match_meter_without_noise() {
    for kind in BenchmarkKind::ALL {
        let (result, reports, model) = saturated_run(kind, NoiseConfig::none(), 11);
        let estimated: f64 = reports.iter().map(|r| model.estimate(r)).sum();
        let recorded = result.total_energy_joules();
        let rel = (recorded - estimated).abs() / recorded;
        // Noise-free: the residual is heartbeat-quantized slot idleness
        // (a freed slot waits up to one 3 s heartbeat for its next task,
        // and that idle sliver is unattributable under Eq. 2) — largest
        // for the short I/O-bound Terasort maps, mirroring the paper's own
        // worst-case NRMSE on I/O-heavy jobs.
        assert!(rel < 0.12, "{kind}: relative gap {rel:.3}");
    }
}

#[test]
fn estimates_stay_close_under_paper_noise() {
    for kind in BenchmarkKind::ALL {
        let (result, reports, model) = saturated_run(kind, NoiseConfig::paper_default(), 13);
        let estimated: f64 = reports.iter().map(|r| model.estimate(r)).sum();
        let recorded = result.total_energy_joules();
        let rel = (recorded - estimated).abs() / recorded;
        // The paper's NRMSE is 8–12 %; totals stay within 16 %.
        assert!(rel < 0.16, "{kind}: relative gap {rel:.3}");
    }
}

#[test]
fn per_task_estimates_track_ground_truth() {
    let (_, reports, model) = saturated_run(BenchmarkKind::Wordcount, NoiseConfig::none(), 17);
    for rep in &reports {
        assert_eq!(rep.kind, SlotKind::Map);
        let est = model.estimate(rep);
        let rel = (est - rep.true_energy_joules).abs() / rep.true_energy_joules;
        assert!(rel < 0.05, "task {}: estimate off by {rel:.3}", rep.task);
    }
}

#[test]
fn noise_widens_per_task_estimate_spread() {
    // Fig. 7's premise: with system noise the per-task estimates scatter.
    let spread = |noise: NoiseConfig, seed: u64| {
        let (_, reports, model) = saturated_run(BenchmarkKind::Wordcount, noise, seed);
        let mut stats = OnlineStats::new();
        for rep in &reports {
            stats.push(model.estimate(rep));
        }
        stats.std_dev() / stats.mean()
    };
    let quiet = spread(NoiseConfig::none(), 19);
    let noisy = spread(NoiseConfig::paper_default(), 19);
    assert!(
        noisy > 1.5 * quiet,
        "noise should widen spread: quiet {quiet:.3}, noisy {noisy:.3}"
    );
}

#[test]
fn machine_exchange_reduces_deposit_variance_across_homogeneous_machines() {
    // Fig. 10's premise: exchange averages out noisy per-machine evidence.
    // Feed the analyzer identical-distribution noisy records on four
    // homogeneous machines and compare per-machine deposit spread.
    let records = |seed: u64| {
        let mut rng = simcore::SimRng::seed_from(seed);
        let mut recs = Vec::new();
        for m in 0..4usize {
            for _ in 0..10 {
                recs.push(TaskEnergyRecord {
                    job: JobId(0),
                    group: GroupId(0),
                    machine: cluster::MachineId(m),
                    energy_joules: rng.normal_clamped(250.0, 60.0, 50.0, 600.0),
                });
            }
        }
        recs
    };
    let spread = |exchange: ExchangeStrategy| {
        let mut analyzer = TaskAnalyzer::new(4);
        for r in records(23) {
            analyzer.record(r);
        }
        let fb = analyzer.compute(&[0, 0, 0, 0], exchange);
        let row = &fb.deposits[&JobId(0)];
        let mut stats = OnlineStats::new();
        for &v in row {
            stats.push(v);
        }
        stats.std_dev()
    };
    let without = spread(ExchangeStrategy::None);
    let with = spread(ExchangeStrategy::MachineLevel);
    assert!(
        with < 1e-9,
        "machine-level exchange must equalize homogeneous deposits, got spread {with}"
    );
    assert!(without > 0.0);
}

#[test]
fn identification_recovers_profile_from_metered_samples() {
    // §IV-B: least-squares identification from (utilization, power)
    // observations reproduces the machine's power model.
    let profile = profiles::t420();
    let truth = profile.power();
    let mut rng = simcore::SimRng::seed_from(31);
    let samples: Vec<(f64, f64)> = (0..200)
        .map(|_| {
            let u = rng.uniform_f64();
            let noise = rng.normal_clamped(0.0, 2.0, -6.0, 6.0);
            (u, truth.power(u) + noise)
        })
        .collect();
    let model = EnergyModel::identify(&samples, profile.total_slots()).expect("fit succeeds");
    assert!((model.idle_watts() - truth.idle_watts()).abs() < 3.0);
    assert!((model.alpha_watts() - truth.alpha_watts()).abs() < 5.0);
}
