//! Golden-value regression tests: summary metrics of one fixed-seed fast
//! MSD run under Fair, Tarazu and E-Ant, pinned with explicit tolerances.
//!
//! The run is bit-deterministic on one toolchain (see
//! `tests/determinism.rs`), so these goldens catch *behavioral* drift — a
//! changed scheduler decision, energy-model constant, or RNG stream — while
//! the tolerances absorb benign float-reassociation differences across
//! compiler versions. If a deliberate change shifts the numbers, re-derive
//! them by running this test with `--nocapture` (each assertion failure
//! prints the observed value) and update the table.

use std::collections::BTreeSet;

use eant::EAntConfig;
use experiments::common::{Scenario, SchedulerKind};
use hadoop_sim::trace::SharedObserver;
use hadoop_sim::{DvfsConfig, PowerDownConfig, RunResult, SpeculationPolicy};
use metrics::spec::fnv1a_64;
use metrics::trace::{parse_trace_line, JsonlTraceSink};
use simcore::SimDuration;
use workload::msd::MsdConfig;

/// Relative tolerance on pinned energy and makespan values.
const REL_TOL: f64 = 0.005;
/// Absolute tolerance, in percentage points, on pinned savings values.
const SAVINGS_TOL_PP: f64 = 1.0;

/// One golden row: scheduler, expected total energy (MJ), expected
/// makespan (s).
struct Golden {
    kind: SchedulerKind,
    energy_mj: f64,
    makespan_s: f64,
}

fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            kind: SchedulerKind::Fair,
            energy_mj: 3.558079,
            makespan_s: 3858.492,
        },
        Golden {
            kind: SchedulerKind::Tarazu,
            energy_mj: 2.201803,
            makespan_s: 2308.866,
        },
        Golden {
            kind: SchedulerKind::EAnt(EAntConfig::paper_default()),
            energy_mj: 2.065391,
            makespan_s: 2148.477,
        },
    ]
}

fn run(kind: &SchedulerKind) -> RunResult {
    Scenario::fast(2015).run(kind)
}

fn assert_close(what: &str, observed: f64, expected: f64, rel_tol: f64) {
    let rel = (observed - expected).abs() / expected.abs();
    assert!(
        rel <= rel_tol,
        "{what}: observed {observed:.6}, pinned {expected:.6} \
         (rel err {rel:.2e} > tol {rel_tol:.0e})"
    );
}

/// Total energy and makespan of each scheduler match the pinned values.
#[test]
fn summary_metrics_match_goldens() {
    for g in goldens() {
        let r = run(&g.kind);
        let label = g.kind.label();
        assert!(r.drained, "{label} failed to drain");
        assert_close(
            &format!("{label} total energy (MJ)"),
            r.total_energy_joules() / 1.0e6,
            g.energy_mj,
            REL_TOL,
        );
        assert_close(
            &format!("{label} makespan (s)"),
            r.makespan.as_secs_f64(),
            g.makespan_s,
            REL_TOL,
        );
    }
}

/// E-Ant's energy savings over each baseline match the pinned
/// percentages: 41.95% vs Fair and 6.20% vs Tarazu on this seed.
#[test]
fn eant_savings_match_goldens() {
    let eant = SchedulerKind::EAnt(EAntConfig::paper_default());
    let e_eant = run(&eant).total_energy_joules();
    let e_fair = run(&SchedulerKind::Fair).total_energy_joules();
    let e_tarazu = run(&SchedulerKind::Tarazu).total_energy_joules();

    let vs_fair = (1.0 - e_eant / e_fair) * 100.0;
    let vs_tarazu = (1.0 - e_eant / e_tarazu) * 100.0;
    assert!(
        (vs_fair - 41.95).abs() <= SAVINGS_TOL_PP,
        "savings vs Fair: observed {vs_fair:.2}%, pinned 41.95% ± {SAVINGS_TOL_PP}pp"
    );
    assert!(
        (vs_tarazu - 6.20).abs() <= SAVINGS_TOL_PP,
        "savings vs Tarazu: observed {vs_tarazu:.2}%, pinned 6.20% ± {SAVINGS_TOL_PP}pp"
    );
}

/// Pinned count and FNV-1a 64 digest of the canonical JSONL trace of one
/// small fixed-seed E-Ant run with every engine feature lit up (LATE
/// speculation, suspend-to-RAM power-down, conservative DVFS), so the
/// stream exercises the full event vocabulary. The digest covers the exact
/// serialized bytes, so it catches any drift in event ordering, payload
/// contents, or the canonical JSON encoding itself. Re-derive with
/// `--nocapture` after deliberate changes: the observed values print below.
///
/// This run leaves [`hadoop_sim::FaultConfig`] at its disabled default, so
/// together with the summary goldens above it also proves the fault layer
/// is zero-perturbation when off: adding fault injection must not shift a
/// single byte of this trace or any pinned metric.
const TRACE_GOLDEN_EVENTS: u64 = 8796;
const TRACE_GOLDEN_FNV1A: u64 = 0xe975ce6ddbe27729;

#[test]
fn golden_trace_digest() {
    let mut scenario = Scenario::fast(2015);
    scenario.msd = MsdConfig {
        num_jobs: 8,
        task_scale: 32,
        submission_window: SimDuration::from_mins(4),
    };
    scenario.engine.speculation = SpeculationPolicy::Late;
    scenario.engine.power_down = Some(PowerDownConfig::suspend_to_ram());
    scenario.engine.dvfs = Some(DvfsConfig::conservative());

    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let engine_sink = sink.clone();
    let scheduler_sink = sink.clone();
    let result = scenario.run_observed(
        &SchedulerKind::EAnt(EAntConfig::paper_default()),
        move |engine, scheduler| {
            engine.attach_observer(Box::new(engine_sink));
            scheduler.attach_observer(Box::new(scheduler_sink));
        },
    );
    assert!(result.drained, "golden trace run failed to drain");

    let bytes = sink
        .try_into_inner()
        .unwrap_or_else(|_| panic!("trace sink still shared after run"))
        .finish()
        .expect("Vec<u8> writes cannot fail");

    // Every line must parse back, and the stream must exercise the full
    // event vocabulary this configuration can produce.
    let mut kinds = BTreeSet::new();
    let mut events = 0u64;
    for line in std::str::from_utf8(&bytes).expect("trace is UTF-8").lines() {
        let (_, event) = parse_trace_line(line)
            .unwrap_or_else(|e| panic!("unparseable trace line: {e}\n{line}"));
        kinds.insert(event.kind());
        events += 1;
    }
    println!("observed kinds: {kinds:?}");
    for kind in [
        "job_submitted",
        "job_completed",
        "task_started",
        "task_completed",
        "heartbeat_drained",
        "slot_occupancy_changed",
        "power_state_changed",
        "speculation_launched",
        "control_interval_fired",
        "pheromone_updated",
        "energy_model_refit",
        "run_finished",
    ] {
        assert!(kinds.contains(kind), "trace is missing `{kind}` events");
    }

    let digest = fnv1a_64(&bytes);
    println!("observed events: {events}, digest: {digest:#018x}");
    assert_eq!(
        events, TRACE_GOLDEN_EVENTS,
        "trace event count drifted (observed {events})"
    );
    assert_eq!(
        digest, TRACE_GOLDEN_FNV1A,
        "trace digest drifted (observed {digest:#018x})"
    );
}

/// Pinned event count and digest of the same golden scenario with
/// [`hadoop_sim::FaultConfig::moderate`] faults injected: the faulted event
/// stream (crashes, heartbeat-expiry deaths, retries, lost map outputs,
/// recoveries) is bit-deterministic too. Re-derive with `--nocapture` as
/// above.
const FAULTED_TRACE_GOLDEN_EVENTS: u64 = 10436;
const FAULTED_TRACE_GOLDEN_FNV1A: u64 = 0x2ac2cde2b757182e;

#[test]
fn golden_faulted_trace_digest() {
    let mut scenario = Scenario::fast(2015);
    scenario.msd = MsdConfig {
        num_jobs: 8,
        task_scale: 32,
        submission_window: SimDuration::from_mins(4),
    };
    scenario.engine.speculation = SpeculationPolicy::Late;
    scenario.engine.power_down = Some(PowerDownConfig::suspend_to_ram());
    scenario.engine.dvfs = Some(DvfsConfig::conservative());
    scenario.engine.fault = hadoop_sim::FaultConfig::moderate();

    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let engine_sink = sink.clone();
    let scheduler_sink = sink.clone();
    let result = scenario.run_observed(
        &SchedulerKind::EAnt(EAntConfig::paper_default()),
        move |engine, scheduler| {
            engine.attach_observer(Box::new(engine_sink));
            scheduler.attach_observer(Box::new(scheduler_sink));
        },
    );
    assert!(result.drained, "faulted golden trace run failed to drain");
    assert!(result.task_failures > 0, "faults never fired");

    let bytes = sink
        .try_into_inner()
        .unwrap_or_else(|_| panic!("trace sink still shared after run"))
        .finish()
        .expect("Vec<u8> writes cannot fail");

    let mut kinds = BTreeSet::new();
    let mut events = 0u64;
    for line in std::str::from_utf8(&bytes).expect("trace is UTF-8").lines() {
        let (_, event) = parse_trace_line(line)
            .unwrap_or_else(|e| panic!("unparseable trace line: {e}\n{line}"));
        kinds.insert(event.kind());
        events += 1;
    }
    println!("observed kinds: {kinds:?}");
    for kind in [
        "task_failed",
        "machine_failed",
        "machine_recovered",
        "map_output_lost",
    ] {
        assert!(
            kinds.contains(kind),
            "faulted trace is missing `{kind}` events"
        );
    }

    let digest = fnv1a_64(&bytes);
    println!("observed events: {events}, digest: {digest:#018x}");
    assert_eq!(
        events, FAULTED_TRACE_GOLDEN_EVENTS,
        "faulted trace event count drifted (observed {events})"
    );
    assert_eq!(
        digest, FAULTED_TRACE_GOLDEN_FNV1A,
        "faulted trace digest drifted (observed {digest:#018x})"
    );
}

/// Pinned event count and digest of the golden scenario with
/// [`hadoop_sim::EngineConfig::trace_decisions`] on: every placement emits
/// an `assignment_decision` event carrying the scheduler's candidate set
/// and the Eq. 8 τ/η/probability decomposition. The decision payload rides
/// the same deterministic stream, so it digests just like the lifecycle
/// events. Crucially, the *clean* digest above is produced with decision
/// tracing off — together the two tests prove the flag is behaviorally
/// inert: turning it on only inserts `assignment_decision` lines, and
/// turning it off reproduces the original bytes exactly. Re-derive with
/// `--nocapture` as above.
const DECISION_TRACE_GOLDEN_EVENTS: u64 = 10331;
const DECISION_TRACE_GOLDEN_FNV1A: u64 = 0x6162eb7b45f71ac0;

#[test]
fn golden_decision_trace_digest() {
    let mut scenario = Scenario::fast(2015);
    scenario.msd = MsdConfig {
        num_jobs: 8,
        task_scale: 32,
        submission_window: SimDuration::from_mins(4),
    };
    scenario.engine.speculation = SpeculationPolicy::Late;
    scenario.engine.power_down = Some(PowerDownConfig::suspend_to_ram());
    scenario.engine.dvfs = Some(DvfsConfig::conservative());
    scenario.engine.trace_decisions = true;

    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let engine_sink = sink.clone();
    let scheduler_sink = sink.clone();
    let result = scenario.run_observed(
        &SchedulerKind::EAnt(EAntConfig::paper_default()),
        move |engine, scheduler| {
            engine.attach_observer(Box::new(engine_sink));
            scheduler.attach_observer(Box::new(scheduler_sink));
        },
    );
    assert!(result.drained, "decision-traced golden run failed to drain");

    let bytes = sink
        .try_into_inner()
        .unwrap_or_else(|_| panic!("trace sink still shared after run"))
        .finish()
        .expect("Vec<u8> writes cannot fail");

    let mut kinds = BTreeSet::new();
    let mut events = 0u64;
    let mut decisions = 0u64;
    for line in std::str::from_utf8(&bytes).expect("trace is UTF-8").lines() {
        let (_, event) = parse_trace_line(line)
            .unwrap_or_else(|e| panic!("unparseable trace line: {e}\n{line}"));
        if event.kind() == "assignment_decision" {
            decisions += 1;
        }
        kinds.insert(event.kind());
        events += 1;
    }
    assert!(
        kinds.contains("assignment_decision"),
        "decision tracing produced no assignment_decision events"
    );
    // The flag only *inserts* decision lines: stripped of them, the stream
    // has exactly as many events as the clean golden trace.
    assert_eq!(
        events - decisions,
        TRACE_GOLDEN_EVENTS,
        "decision tracing perturbed the underlying event stream"
    );

    let digest = fnv1a_64(&bytes);
    println!("observed events: {events}, digest: {digest:#018x}");
    assert_eq!(
        events, DECISION_TRACE_GOLDEN_EVENTS,
        "decision trace event count drifted (observed {events})"
    );
    assert_eq!(
        digest, DECISION_TRACE_GOLDEN_FNV1A,
        "decision trace digest drifted (observed {digest:#018x})"
    );
}

/// Fixed-seed paper-scale E-Ant makespan, pinned. The 87-job realization
/// saturates the fleet and E-Ant's energy-greedy placements stretch the
/// makespan well past Fair's (the ROADMAP re-tuning item); this golden pins
/// the *current* trajectory so scheduler or engine changes that shift the
/// paper-scale behavior — intentionally or not — are caught at review time
/// rather than showing up as silent EXPERIMENTS.md drift.
#[test]
fn paper_scale_eant_makespan_matches_golden() {
    let r = Scenario::paper(1234).run(&SchedulerKind::EAnt(EAntConfig::paper_default()));
    assert!(r.drained, "paper-scale E-Ant failed to drain");
    assert_close(
        "paper-scale E-Ant makespan (s)",
        r.makespan.as_secs_f64(),
        11470.165,
        REL_TOL,
    );
}

/// Pinned fast-profile goldens for every committed scenario file: the
/// first scheduler × first seed cell's total energy (MJ), makespan (s),
/// and exact FNV-1a 64 digest of the canonical serialized
/// [`hadoop_sim::RunResult`]. Energy and makespan carry the usual
/// [`REL_TOL`] slack for cross-toolchain float reassociation; the digest
/// pins this toolchain's exact bytes like the trace goldens above.
/// Re-derive with `--nocapture`: each row's observed tuple prints below.
#[test]
fn scenario_library_matches_goldens() {
    use experiments::scenario::{library_dir, load_spec};
    use metrics::emit::run_result_json;

    let table: &[(&str, f64, f64, u64)] = &[
        ("crash-heavy-churn", 5.623288, 6046.415, 0x949640a6cd82c1b3),
        ("deadline-batches", 0.771439, 856.220, 0xb7279a111805b513),
        ("diurnal-double-peak", 0.745891, 830.783, 0xd155439375f4a65d),
        ("fig8-msd", 3.558079, 3858.492, 0xefd50d75ad89bf0d),
        ("fleet-refresh", 1.666999, 1775.056, 0x1d7bd4048464f914),
        (
            "multi-tenant-min-shares",
            0.620810,
            679.467,
            0x5d8780bb2d1bd72b,
        ),
        ("rack-locality-skew", 0.552067, 1156.808, 0xa75889c27b8f0b31),
        ("scale-1000", 109.846479, 1990.655, 0x63339a02920fcc5e),
        ("serve-diurnal-wave", 4.961685, 4200.000, 0x1f9c4ec0ebe16938),
        (
            "serve-overload-burst",
            3.166742,
            2400.000,
            0xd088e9492e962f58,
        ),
        // Same workload/serve sections (and first cell: FIFO, seed 2015)
        // as serve-overload-burst — the `slo` section is harness-side
        // only, so the digest matches that scenario's exactly.
        (
            "serve-overload-burst-slo",
            3.166742,
            2400.000,
            0xd088e9492e962f58,
        ),
        (
            "serve-steady-poisson",
            4.015660,
            3000.000,
            0x4846080777d4864a,
        ),
    ];

    // The table must cover the whole library: a new scenario file needs a
    // golden row before it can ship.
    let mut files: Vec<String> = std::fs::read_dir(library_dir())
        .expect("scenarios/ exists")
        .filter_map(|e| {
            let name = e.expect("readable dir entry").file_name();
            let name = name.to_string_lossy();
            name.strip_suffix(".json").map(str::to_owned)
        })
        .collect();
    files.sort();
    let pinned: Vec<&str> = table.iter().map(|&(name, ..)| name).collect();
    assert_eq!(files, pinned, "scenario library and golden table disagree");

    // Two passes: run (and print) every row first so a drifted table can be
    // re-derived wholesale from one `--nocapture` run, then assert.
    let observed: Vec<(f64, f64, u64)> = table
        .iter()
        .map(|&(name, ..)| {
            let spec = load_spec(&library_dir().join(format!("{name}.json")))
                .unwrap_or_else(|e| panic!("{e}"));
            let kind = spec.schedulers[0].clone();
            let seed = spec.seeds[0];
            let r = spec.execute(&kind, seed, true);
            // Horizon-stopped (service-mode) scenarios end at the deadline
            // with work in flight; only drain-mode rows must drain.
            assert!(r.drained || spec.serve.is_some(), "{name} failed to drain");
            let digest = fnv1a_64(run_result_json(&r).as_bytes());
            let energy = r.total_energy_joules() / 1.0e6;
            let makespan = r.makespan.as_secs_f64();
            println!("(\"{name}\", {energy:.6}, {makespan:.3}, {digest:#018x}),");
            (energy, makespan, digest)
        })
        .collect();
    for (&(name, energy_mj, makespan_s, digest), &(energy, makespan, observed)) in
        table.iter().zip(&observed)
    {
        assert_close(
            &format!("{name} total energy (MJ)"),
            energy,
            energy_mj,
            REL_TOL,
        );
        assert_close(
            &format!("{name} makespan (s)"),
            makespan,
            makespan_s,
            REL_TOL,
        );
        assert_eq!(
            observed, digest,
            "{name} result digest drifted (observed {observed:#018x})"
        );
    }
}

/// The Fig. 8 grid reproduced *from the scenario file* is byte-identical
/// to the hard-coded [`Scenario`] path: same canonical serialized result
/// for every scheduler in the file, at two of its seeds. This is the
/// contract that lets scenario files replace the figure modules without a
/// re-baseline.
#[test]
fn fig8_scenario_file_reproduces_hardcoded_grid() {
    use experiments::scenario::{library_dir, load_spec};
    use metrics::emit::run_result_json;

    let spec = load_spec(&library_dir().join("fig8-msd.json")).unwrap_or_else(|e| panic!("{e}"));
    for seed in [2015u64, 1234] {
        assert!(
            spec.seeds.contains(&seed),
            "fig8-msd.json dropped seed {seed}"
        );
        for kind in &spec.schedulers {
            let from_spec = run_result_json(&spec.execute(kind, seed, true));
            let hard_coded = run_result_json(&Scenario::fast(seed).run(kind));
            assert!(
                from_spec == hard_coded,
                "{} seed {seed}: scenario-file run diverges from the hard-coded path",
                kind.label()
            );
        }
    }
}
