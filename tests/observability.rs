//! End-to-end observability pipeline tests: decision-traced runs flowing
//! through the JSONL codec into `trace-diff`, the replay breakdown, the
//! registry snapshot, the sampled time series and the SLO watchdog's
//! postmortem flight recorder.

use eant::EAntConfig;
use experiments::common::{parallel_runs_with_workers, Scenario, SchedulerKind};
use experiments::scenario::{library_dir, load_spec, ScenarioSpec};
use experiments::slo::{run_monitored, MonitoredCell, PostmortemBundle};
use experiments::timeline::{registry_snapshot_path, telemetry_series_path};
use hadoop_sim::trace::SharedObserver;
use hadoop_sim::FaultConfig;
use metrics::emit::JsonValue;
use metrics::registry::RegistryObserver;
use metrics::trace::JsonlTraceSink;
use simcore::SimDuration;
use std::path::PathBuf;
use workload::msd::MsdConfig;

/// A small fixed scenario shared by every test here.
fn small_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::fast(seed);
    s.msd = MsdConfig {
        num_jobs: 6,
        task_scale: 32,
        submission_window: SimDuration::from_mins(4),
    };
    s
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("eant-observability-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

/// Runs the scenario with a JSONL sink on the engine stream and writes the
/// trace to `path`.
fn write_scenario_trace(scenario: &Scenario, path: &PathBuf) {
    let kind = SchedulerKind::EAnt(EAntConfig::paper_default());
    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let handle = sink.clone();
    let _ = scenario.run_observed(&kind, move |engine, _| {
        engine.attach_observer(Box::new(handle));
    });
    let bytes = sink
        .try_into_inner()
        .expect("sink still shared")
        .finish()
        .expect("Vec<u8> writes cannot fail");
    std::fs::write(path, bytes).unwrap();
}

/// Diffing a faulted run against its clean same-seed twin pinpoints the
/// fault: scoped to `machine_failed`, the clean side is empty and the
/// report leads with the faulted trace's first machine death; unscoped,
/// the traces share a prefix and the first divergence is where fault
/// handling first changed the schedule.
#[test]
fn trace_diff_pinpoints_first_machine_failure() {
    let clean_path = tmp("clean");
    let faulted_path = tmp("faulted");
    let clean = small_scenario(11);
    let mut faulted = small_scenario(11);
    faulted.engine.fault = FaultConfig {
        crash_mtbf: SimDuration::from_mins(30),
        crash_downtime: SimDuration::from_mins(1),
        task_failure_prob: 0.05,
        blacklist_threshold: 10,
        ..FaultConfig::none()
    };
    write_scenario_trace(&clean, &clean_path);
    write_scenario_trace(&faulted, &faulted_path);

    let scoped =
        experiments::tracediff::run(&clean_path, &faulted_path, Some("machine_failed")).unwrap();
    assert!(
        scoped.contains("b has") && scoped.contains("extra trailing event(s)"),
        "clean trace must have zero machine_failed events:\n{scoped}"
    );
    assert!(
        scoped.contains("\"type\":\"machine_failed\""),
        "scoped diff must print the first machine_failed line:\n{scoped}"
    );

    let full = experiments::tracediff::run(&clean_path, &faulted_path, None).unwrap();
    assert!(
        full.contains("first divergence"),
        "faulted run must diverge from its clean twin:\n{full}"
    );
    assert!(full.contains("machine_failed"), "{full}");

    let identity = experiments::tracediff::run(&clean_path, &clean_path, None).unwrap();
    assert!(identity.contains("traces are identical"), "{identity}");

    for p in [clean_path, faulted_path] {
        std::fs::remove_file(p).ok();
    }
}

/// A decision-traced replay prints the Eq. 8 probability breakdown for the
/// reduce tail, and the registry snapshot written next to the trace is
/// valid canonical JSON carrying the decision counters.
#[test]
fn replay_prints_decision_breakdown_and_registry_snapshot() {
    use experiments::timeline::{write_trace_with, TraceOptions};

    let path = tmp("decisions");
    let report = write_trace_with(
        TraceOptions {
            fast: true,
            seed: 2015,
            decisions: true,
        },
        &path,
    )
    .unwrap();
    assert!(report.contains("decision tracing on"), "{report}");

    let replayed = experiments::timeline::replay(&path).unwrap();
    assert!(
        replayed.contains("Eq. 8 decision breakdown"),
        "replay must print the decision breakdown:\n{replayed}"
    );
    assert!(replayed.contains("tau="), "{replayed}");
    assert!(replayed.contains("<- chosen"), "{replayed}");

    let snapshot_path = registry_snapshot_path(&path);
    let text = std::fs::read_to_string(&snapshot_path).unwrap();
    let snap = JsonValue::parse(&text).expect("registry snapshot parses");
    assert_eq!(snap.render(), text, "snapshot must be canonical");
    assert!(
        text.contains("assignment_decisions_total"),
        "snapshot must carry the decision counters: {text}"
    );
    assert!(text.contains("task_duration_seconds"), "{text}");

    std::fs::remove_file(snapshot_path).ok();
    std::fs::remove_file(telemetry_series_path(&path)).ok();
    std::fs::remove_file(path).ok();
}

/// The registry observer attached to a live engine produces the same
/// snapshot as one replayed from the trace of that run: the registry is a
/// pure fold over the event stream.
#[test]
fn registry_snapshot_is_replay_invariant() {
    use metrics::trace::read_trace_lines;

    let mut scenario = small_scenario(7);
    scenario.engine.trace_decisions = true;
    let kind = SchedulerKind::EAnt(EAntConfig::paper_default());

    // The registry must see the same stream the sink serializes: both get
    // the engine and the scheduler events.
    let sink = SharedObserver::new(JsonlTraceSink::new(Vec::<u8>::new()));
    let live = SharedObserver::new(RegistryObserver::new());
    let sink_handle = sink.clone();
    let live_handle = live.clone();
    let _ = scenario.run_observed(&kind, move |engine, scheduler| {
        engine.attach_observer(Box::new(sink_handle.clone()));
        engine.attach_observer(Box::new(live_handle.clone()));
        scheduler.attach_observer(Box::new(sink_handle));
        scheduler.attach_observer(Box::new(live_handle));
    });
    let live_snapshot = live.with(|r| r.registry().snapshot().render());

    let bytes = sink
        .try_into_inner()
        .expect("sink still shared")
        .finish()
        .expect("Vec<u8> writes cannot fail");
    let mut replayed = RegistryObserver::new();
    for (_, at, event) in read_trace_lines(bytes.as_slice()).unwrap() {
        use hadoop_sim::trace::Observer;
        replayed.on_event(at, &event);
    }
    assert_eq!(
        replayed.registry().snapshot().render(),
        live_snapshot,
        "replayed registry snapshot diverges from the live one"
    );
}

fn slo_spec() -> ScenarioSpec {
    load_spec(&library_dir().join("serve-overload-burst-slo.json"))
        .expect("committed slo scenario parses")
}

/// Serializes everything a postmortem bundle writes to disk, so two
/// bundles can be compared byte for byte without touching the filesystem.
fn bundle_bytes(pm: &PostmortemBundle) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        pm.breach_json().render(),
        pm.events_jsonl(),
        pm.series.render(),
        pm.decisions
    )
}

/// Runs every (scheduler × seed) cell of the slo scenario monitored, on
/// `workers` threads, and returns the cells in grid order.
fn run_cells(spec: &ScenarioSpec, workers: usize) -> Vec<MonitoredCell> {
    let cells: Vec<_> = spec
        .schedulers
        .iter()
        .flat_map(|kind| spec.seeds.iter().map(move |&seed| (kind, seed)))
        .collect();
    let tasks: Vec<_> = cells
        .iter()
        .map(|&(kind, seed)| move || run_monitored(spec, kind, seed, true))
        .collect();
    parallel_runs_with_workers(workers, tasks)
}

/// The flight recorder is deterministic two ways at once: the same breach
/// evidence comes out byte-identical on 1 vs 4 worker threads, and across
/// two consecutive single-threaded regenerations.
#[test]
fn postmortem_bundle_is_thread_count_invariant_and_rerun_stable() {
    let spec = slo_spec();
    let serial = run_cells(&spec, 1);
    let parallel = run_cells(&spec, 4);
    let again = run_cells(&spec, 1);
    assert_eq!(serial.len(), parallel.len());

    let mut breached = 0usize;
    for ((a, b), c) in serial.iter().zip(&parallel).zip(&again) {
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.registry.render(), b.registry.render(), "{}", a.scheduler);
        assert_eq!(a.series.render(), b.series.render(), "{}", a.scheduler);
        match (&a.postmortem, &b.postmortem, &c.postmortem) {
            (Some(a), Some(b), Some(c)) => {
                let bytes = bundle_bytes(a);
                assert_eq!(
                    bytes,
                    bundle_bytes(b),
                    "bundle differs across thread counts"
                );
                assert_eq!(bytes, bundle_bytes(c), "bundle differs across reruns");
                breached += 1;
            }
            (None, None, None) => {}
            _ => panic!("breach occurrence differs across runs for {}", a.scheduler),
        }
    }
    // The scenario is built so E-Ant (and only E-Ant) trips the watchdog.
    assert_eq!(breached, 1, "expected exactly the E-Ant cell to breach");
    let eant = serial
        .iter()
        .find(|c| c.scheduler == "E-Ant")
        .expect("slo scenario includes E-Ant");
    let pm = eant.postmortem.as_ref().expect("E-Ant breaches");
    assert_eq!(pm.breach.monitor, "p99_sojourn");
}

/// Every sampled counter series is a sequence of windowed deltas; summing
/// the windows must reproduce the counter's end-of-run registry value
/// *exactly* — integer events, integer counts, no drift. Checked for every
/// counter of every cell of the slo scenario, watchdog armed and not.
#[test]
fn series_counter_deltas_resum_to_registry_snapshot() {
    let mut spec = slo_spec();
    for armed in [true, false] {
        if !armed {
            spec.slo = None;
        }
        for cell in run_cells(&spec, 2) {
            let counters = cell
                .registry
                .get("counters")
                .and_then(|v| match v {
                    JsonValue::Array(items) => Some(items.clone()),
                    _ => None,
                })
                .expect("registry snapshot has a counters array");
            assert!(!counters.is_empty(), "registry folded no counters");
            let mut checked = 0usize;
            for counter in &counters {
                let key = series_key(counter);
                let total = counter
                    .get("value")
                    .and_then(JsonValue::as_u64)
                    .expect("counter value is a u64");
                let series = cell
                    .series
                    .get(&key)
                    .unwrap_or_else(|| panic!("no sampled series for counter {key}"));
                let resummed: f64 = series.iter().map(|(_, v)| v).sum();
                assert!(
                    (resummed - total as f64).abs() == 0.0,
                    "{}/{key}: series re-sums to {resummed}, registry says {total}",
                    cell.scheduler
                );
                checked += 1;
            }
            assert!(
                checked >= 5,
                "{}: only {checked} counters checked",
                cell.scheduler
            );
        }
    }
}

/// Rebuilds a counter's sampled-series key (`name{k=v,...}`) from its
/// registry-snapshot JSON entry.
fn series_key(counter: &JsonValue) -> String {
    let name = counter
        .get("name")
        .and_then(JsonValue::as_str)
        .expect("counter has a name");
    let mut key = name.to_owned();
    if let Some(JsonValue::Object(pairs)) = counter.get("labels") {
        if !pairs.is_empty() {
            let rendered: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().expect("string label")))
                .collect();
            key.push('{');
            key.push_str(&rendered.join(","));
            key.push('}');
        }
    }
    key
}
