//! Property-based tests over the core data structures and cross-crate
//! invariants, driven by in-repo [`SimRng`] generators.
//!
//! The workspace builds hermetically (no registry access), so instead of
//! `proptest` each property runs a fixed number of generated cases from a
//! deterministic seed tree: case `i` of property `p` draws from
//! `SimRng::seed_from(PROPERTY_SEED).fork_index(p, i)`. Failures therefore
//! reproduce exactly — the panic message names the property and case index,
//! and re-running the test replays the identical inputs.

use std::collections::BTreeMap;

use cluster::hdfs::BlockPlacer;
use cluster::{profiles, Fleet, MachineId};
use eant::{
    heuristic, EnergyModel, ExchangeStrategy, PheromoneTable, TaskAnalyzer, TaskEnergyRecord,
};
use hadoop_sim::{
    Engine, EngineConfig, GreedyScheduler, NoiseConfig, PowerDownConfig, SpeculationPolicy,
};
use simcore::{EventQueue, SimRng, SimTime};
use workload::{Benchmark, BenchmarkKind, GroupId, JobId, JobSpec};

/// Root seed of every property's case tree. Changing it reshuffles all
/// generated inputs at once.
const PROPERTY_SEED: u64 = 0xE0A7;

/// Runs `cases` generated cases of a property, replaying deterministically
/// and naming the failing case.
fn check(name: &str, cases: usize, case: impl Fn(&mut SimRng)) {
    for i in 0..cases {
        let mut rng = SimRng::seed_from(PROPERTY_SEED).fork_index(name, i);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("property `{name}` failed on case {i}/{cases}: {msg}");
        }
    }
}

fn f64_vec(rng: &mut SimRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.uniform_range(lo, hi)).collect()
}

/// Pheromone values stay within [tau_min, tau_max] for any deposit
/// pattern, with or without negative feedback.
#[test]
fn pheromone_bounds_hold() {
    check("pheromone_bounds_hold", 256, |rng| {
        let jobs = rng.uniform_u64(1, 5) as usize;
        let deposits: Vec<Vec<f64>> = (0..jobs).map(|_| f64_vec(rng, 4, -1.0e6, 1.0e6)).collect();
        let rho = rng.uniform_range(0.01, 1.0);
        let negative = rng.chance(0.5);
        let mut table = PheromoneTable::new(4, 1.0, 0.05, 100.0);
        let map: BTreeMap<JobId, Vec<f64>> = deposits
            .into_iter()
            .enumerate()
            .map(|(i, d)| (JobId(i as u64), d))
            .collect();
        table.apply_deposits(&map, rho, negative);
        for &job in map.keys() {
            for m in 0..4 {
                let tau = table.get(job, MachineId(m));
                assert!((0.05..=100.0).contains(&tau), "tau = {tau}");
            }
        }
    });
}

/// Eq. 3 probabilities always form a distribution.
#[test]
fn pheromone_probabilities_sum_to_one() {
    check("pheromone_probabilities_sum_to_one", 256, |rng| {
        let deposits = f64_vec(rng, 8, 0.0, 1.0e4);
        let rho = rng.uniform_range(0.01, 1.0);
        let mut table = PheromoneTable::new(8, 1.0, 0.05, 1.0e4);
        let mut map = BTreeMap::new();
        map.insert(JobId(0), deposits);
        table.apply_deposits(&map, rho, true);
        let p = table.probabilities(JobId(0));
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!(p.iter().all(|&x| x > 0.0));
    });
}

/// Events always pop in nondecreasing time order.
#[test]
fn event_queue_is_monotone() {
    check("event_queue_is_monotone", 256, |rng| {
        let n = rng.uniform_u64(1, 99) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 999_999)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
    });
}

/// The calendar-wheel [`EventQueue`] pops the exact sequence the reference
/// `BinaryHeap` future-event list would, for random interleavings of
/// schedules and pops — including same-timestamp ties (FIFO stability),
/// schedule-at-now reactions, and far-future events that cross the wheel's
/// overflow horizon in both directions.
#[test]
fn calendar_queue_matches_heap_oracle() {
    /// The pre-calendar implementation, kept as the ordering oracle:
    /// a min-heap on (timestamp, global insertion sequence).
    #[derive(Default)]
    struct HeapOracle {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize)>>,
        seq: u64,
    }
    impl HeapOracle {
        fn schedule(&mut self, at: SimTime, event: usize) {
            self.heap.push(std::cmp::Reverse((at, self.seq, event)));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, usize)> {
            let std::cmp::Reverse((at, _, event)) = self.heap.pop()?;
            Some((at, event))
        }
    }

    check("calendar_queue_matches_heap_oracle", 128, |rng| {
        let mut q = EventQueue::new();
        let mut oracle = HeapOracle::default();
        let mut now = SimTime::ZERO;
        let ops = rng.uniform_u64(1, 400) as usize;
        for i in 0..ops {
            if rng.chance(0.6) || q.is_empty() {
                // Mix near-future (wheel), same-instant (fires now) and
                // far-future (overflow heap) timestamps; never earlier
                // than `now`, which the queue's contract forbids.
                let offset = if rng.chance(0.05) {
                    0
                } else if rng.chance(0.15) {
                    rng.uniform_u64(600_000, 7_200_000) // beyond the wheel horizon
                } else {
                    rng.uniform_u64(0, 30_000)
                };
                let at = now + simcore::SimDuration::from_millis(offset);
                q.schedule(at, i);
                oracle.schedule(at, i);
            } else {
                let got = q.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "pop {i} diverged from the heap oracle");
                if let Some((at, _)) = got {
                    now = at;
                }
            }
            assert_eq!(q.len(), oracle.heap.len());
        }
        let mut drained = 0u32;
        loop {
            let got = q.pop();
            let want = oracle.pop();
            assert_eq!(got, want, "drain pop {drained} diverged from the oracle");
            if got.is_none() {
                break;
            }
            drained += 1;
        }
    });
}

/// The dense [`TaskArena`] behaves exactly like the per-task `BTreeMap`
/// registries it replaced — attempt slices in launch order, liveness,
/// failure counters and id-ordered in-flight iteration — under random
/// interleavings of attempt starts, single completions, failure bumps and
/// crash-style bulk removals of every attempt on one machine (the
/// `declare_dead` path).
#[test]
fn arena_task_state_matches_per_task_oracle() {
    use cluster::SlotKind;
    use hadoop_sim::{TaskArena, MAX_ATTEMPTS};
    use workload::{TaskId, TaskIndex};

    check("arena_task_state_matches_per_task_oracle", 128, |rng| {
        let jobs = rng.uniform_u64(1, 6) as usize;
        let mut arena = TaskArena::new(true);
        let mut tasks: Vec<TaskId> = Vec::new();
        for j in 0..jobs {
            let maps = rng.uniform_u64(1, 8) as u32;
            let reduces = rng.uniform_u64(0, 4) as u32;
            arena.register_job(maps, reduces);
            for index in 0..maps {
                tasks.push(TaskId {
                    job: JobId(j as u64),
                    task: TaskIndex {
                        kind: SlotKind::Map,
                        index,
                    },
                });
            }
            for index in 0..reduces {
                tasks.push(TaskId {
                    job: JobId(j as u64),
                    task: TaskIndex {
                        kind: SlotKind::Reduce,
                        index,
                    },
                });
            }
        }
        let machines = 8u64;
        // The engine structures the arena replaced: an attempt registry
        // keyed by task with machine-match removal, and a separate
        // failed-attempt counter map.
        let mut attempts: BTreeMap<TaskId, Vec<(MachineId, SimTime)>> = BTreeMap::new();
        let mut failures: BTreeMap<TaskId, u32> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        let ops = rng.uniform_u64(1, 200) as usize;
        for _ in 0..ops {
            now += simcore::SimDuration::from_millis(rng.uniform_u64(0, 5_000));
            let t = tasks[rng.uniform_u64(0, tasks.len() as u64 - 1) as usize];
            let draw = rng.uniform_u64(0, 99);
            if draw < 45 {
                // Attempt start. The engine launches at most MAX_ATTEMPTS
                // concurrent copies and never two on one machine
                // (speculation skips the original's host).
                let m = MachineId(rng.uniform_u64(0, machines - 1) as usize);
                let list = attempts.entry(t).or_default();
                if list.len() < MAX_ATTEMPTS && list.iter().all(|&(held, _)| held != m) {
                    list.push((m, now));
                    arena.push_attempt(t, m, now);
                }
                if list.is_empty() {
                    attempts.remove(&t);
                }
            } else if draw < 75 {
                // Completion or single failure: removal by machine match,
                // tolerating machines that run nothing of this task.
                let m = MachineId(rng.uniform_u64(0, machines - 1) as usize);
                arena.remove_attempt(t, m);
                if let Some(list) = attempts.get_mut(&t) {
                    list.retain(|&(held, _)| held != m);
                    if list.is_empty() {
                        attempts.remove(&t);
                    }
                }
            } else if draw < 90 {
                arena.record_failure(t);
                *failures.entry(t).or_insert(0) += 1;
            } else {
                // Crash: every attempt on one machine dies at once, like
                // `declare_dead` draining a machine's in-flight registry.
                let m = MachineId(rng.uniform_u64(0, machines - 1) as usize);
                let doomed: Vec<TaskId> = attempts
                    .iter()
                    .filter(|(_, list)| list.iter().any(|&(held, _)| held == m))
                    .map(|(&t, _)| t)
                    .collect();
                for t in doomed {
                    arena.remove_attempt(t, m);
                    arena.record_failure(t);
                    *failures.entry(t).or_insert(0) += 1;
                    let list = attempts.get_mut(&t).expect("doomed task tracked");
                    list.retain(|&(held, _)| held != m);
                    if list.is_empty() {
                        attempts.remove(&t);
                    }
                }
            }
            // Full-state comparison after every op.
            for &t in &tasks {
                let want: &[(MachineId, SimTime)] =
                    attempts.get(&t).map_or(&[], |list| list.as_slice());
                assert_eq!(arena.attempts(t), want, "attempts of {t} diverged");
                assert_eq!(arena.has_live_attempt(t), !want.is_empty());
                assert_eq!(arena.failures(t), failures.get(&t).copied().unwrap_or(0));
            }
            let want_inflight: Vec<TaskId> = attempts.keys().copied().collect();
            assert_eq!(
                arena.inflight_tasks().collect::<Vec<_>>(),
                want_inflight,
                "in-flight iteration diverged from the BTreeMap key order"
            );
        }
    });
}

/// The fairness heuristic is finite, positive, and monotone in the
/// deficit.
#[test]
fn fairness_heuristic_is_sane() {
    check("fairness_heuristic_is_sane", 256, |rng| {
        let min_share = rng.uniform_range(0.0, 200.0);
        let occupied = rng.uniform_u64(0, 499) as u32;
        let pool = rng.uniform_u64(1, 499) as usize;
        let eta = heuristic::fairness(min_share, occupied, pool);
        assert!(eta.is_finite() && eta > 0.0, "eta = {eta}");
        // One more occupied slot can never raise the priority.
        let eta_more = heuristic::fairness(min_share, occupied + 1, pool);
        assert!(eta_more <= eta + 1e-12);
    });
}

/// Eq. 2 estimates are non-negative and monotone in utilization.
#[test]
fn energy_model_is_monotone() {
    check("energy_model_is_monotone", 256, |rng| {
        let idle = rng.uniform_range(0.0, 200.0);
        let alpha = rng.uniform_range(0.0, 200.0);
        let slots = rng.uniform_u64(1, 11) as usize;
        let u1 = rng.uniform_f64();
        let u2 = rng.uniform_f64();
        let dur = rng.uniform_range(0.0, 10_000.0);
        let model = EnergyModel::new(idle, alpha, slots);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let e_lo = model.estimate_mean(lo, dur);
        let e_hi = model.estimate_mean(hi, dur);
        assert!(e_lo >= 0.0);
        assert!(e_hi >= e_lo - 1e-9);
    });
}

/// Block placement never duplicates replicas and never exceeds the
/// fleet.
#[test]
fn block_placement_is_valid() {
    check("block_placement_is_valid", 128, |rng| {
        let seed = rng.next_u64();
        let count = rng.uniform_u64(1, 49) as usize;
        let fleet = Fleet::paper_evaluation();
        let mut placer = BlockPlacer::new(3);
        let mut block_rng = SimRng::seed_from(seed);
        for block in placer.place(&fleet, count, &mut block_rng) {
            assert!(!block.replicas.is_empty());
            assert!(block.replicas.len() <= 3);
            let mut seen = block.replicas.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), block.replicas.len());
            assert!(block.replicas.iter().all(|m| m.index() < fleet.len()));
        }
    });
}

/// The analyzer's deposits are non-negative and only land on machines
/// that (transitively, via exchange groups) saw tasks.
#[test]
fn analyzer_deposits_are_nonnegative() {
    check("analyzer_deposits_are_nonnegative", 256, |rng| {
        let n = rng.uniform_u64(1, 39) as usize;
        let energies = f64_vec(rng, n, 1.0, 10_000.0);
        let exchange = [
            ExchangeStrategy::None,
            ExchangeStrategy::MachineLevel,
            ExchangeStrategy::JobLevel,
            ExchangeStrategy::Both,
        ][rng.uniform_u64(0, 3) as usize];
        let mut analyzer = TaskAnalyzer::new(4);
        for (i, &e) in energies.iter().enumerate() {
            analyzer.record(TaskEnergyRecord {
                job: JobId((i % 3) as u64),
                group: GroupId((i % 2) as u32),
                machine: MachineId(i % 4),
                energy_joules: e,
            });
        }
        let fb = analyzer.compute(&[0, 0, 1, 1], exchange);
        assert_eq!(fb.tasks_analyzed, energies.len());
        for row in fb.deposits.values() {
            assert!(row.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    });
}

/// Any small job mix drains on the paper fleet under the reference
/// scheduler, with tasks conserved.
#[test]
fn engine_drains_arbitrary_small_workloads() {
    check("engine_drains_arbitrary_small_workloads", 24, |rng| {
        let seed = rng.next_u64();
        let jobs_n = rng.uniform_u64(1, 4) as usize;
        let maps: Vec<u32> = (0..jobs_n).map(|_| rng.uniform_u64(1, 39) as u32).collect();
        let cfg = EngineConfig {
            noise: NoiseConfig::none(),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let mut expected = 0u64;
        let jobs = maps
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let reduces = m / 4;
                expected += u64::from(m + reduces);
                JobSpec::new(
                    JobId(i as u64),
                    Benchmark::of(
                        [
                            BenchmarkKind::Wordcount,
                            BenchmarkKind::Grep,
                            BenchmarkKind::Terasort,
                        ][i % 3],
                    ),
                    m,
                    reduces,
                    SimTime::from_secs(i as u64 * 10),
                )
            })
            .collect();
        engine.submit_jobs(jobs);
        let result = engine.run(&mut GreedyScheduler::new());
        assert!(result.drained);
        assert_eq!(result.total_tasks, expected);
    });
}

/// With any speculation policy and straggler noise, every workload
/// drains with exact task conservation — backups never double-count.
#[test]
fn speculation_conserves_tasks() {
    check("speculation_conserves_tasks", 24, |rng| {
        let seed = rng.next_u64();
        let policy = [
            SpeculationPolicy::Off,
            SpeculationPolicy::Hadoop,
            SpeculationPolicy::Late,
        ][rng.uniform_u64(0, 2) as usize];
        let maps = rng.uniform_u64(8, 59) as u32;
        let cfg = EngineConfig {
            noise: NoiseConfig {
                straggler_prob: 0.2,
                straggler_slowdown: (2.0, 6.0),
                utilization_jitter: 0.1,
            },
            speculation: policy,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let reduces = maps / 6;
        engine.submit_jobs(vec![JobSpec::new(
            JobId(0),
            Benchmark::wordcount(),
            maps,
            reduces,
            SimTime::ZERO,
        )]);
        let result = engine.run(&mut GreedyScheduler::new());
        assert!(result.drained);
        assert_eq!(result.total_tasks, u64::from(maps + reduces));
        assert!(result.wasted_attempts <= result.speculative_attempts);
        if policy == SpeculationPolicy::Off {
            assert_eq!(result.speculative_attempts, 0);
        }
    });
}

/// Power-down never strands work and never *increases* energy relative
/// to physical limits (total energy is at least the standby floor).
#[test]
fn power_down_is_safe() {
    check("power_down_is_safe", 16, |rng| {
        let seed = rng.next_u64();
        let gap_mins = rng.uniform_u64(1, 29);
        let cfg = EngineConfig {
            noise: NoiseConfig::none(),
            power_down: Some(PowerDownConfig::suspend_to_ram()),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        engine.submit_jobs(vec![
            JobSpec::new(JobId(0), Benchmark::grep(), 16, 2, SimTime::ZERO),
            JobSpec::new(
                JobId(1),
                Benchmark::grep(),
                16,
                2,
                SimTime::from_secs(gap_mins * 60),
            ),
        ]);
        let result = engine.run(&mut GreedyScheduler::new());
        assert!(result.drained, "power-down must never strand work");
        assert_eq!(result.total_tasks, 36);
        // Energy floor: every machine draws at least standby power for the
        // whole run.
        let floor = 2.5 * 16.0 * result.makespan.as_secs_f64();
        assert!(result.total_energy_joules() >= floor * 0.99);
    });
}

/// Machine energy meters never decrease and never drop below idle
/// draw.
#[test]
fn meter_monotone_and_bounded_below() {
    check("meter_monotone_and_bounded_below", 256, |rng| {
        let spans_n = rng.uniform_u64(1, 29) as usize;
        let spans: Vec<u64> = (0..spans_n).map(|_| rng.uniform_u64(1, 99)).collect();
        let profile = profiles::desktop();
        let mut machine = cluster::Machine::new(MachineId(0), profile.clone());
        let mut now = SimTime::ZERO;
        let mut last_energy = 0.0;
        for secs in spans {
            now += simcore::SimDuration::from_secs(secs);
            machine.sync(now);
            let e = machine.meter().total_joules();
            assert!(e >= last_energy);
            // Idle machine: exactly idle power integrated.
            let idle_floor =
                profile.power().idle_watts() * now.saturating_since(SimTime::ZERO).as_secs_f64();
            assert!(e >= idle_floor - 1e-6);
            last_energy = e;
        }
    });
}

/// The in-repo case generator itself is deterministic: the same property
/// name and case index always see the same stream.
#[test]
fn case_generation_is_deterministic() {
    let draw = |name: &str, case: usize| {
        let mut rng = SimRng::seed_from(PROPERTY_SEED).fork_index(name, case);
        (rng.next_u64(), rng.uniform_f64())
    };
    assert_eq!(draw("p", 0), draw("p", 0));
    assert_ne!(draw("p", 0), draw("p", 1));
    assert_ne!(draw("p", 0), draw("q", 0));
}

/// After every engine event the incrementally maintained scoreboard equals
/// a from-scratch rebuild — the tentpole invariant of the ClusterState
/// refactor. A wrapper scheduler checks `state() == rebuild_state()` inside
/// every callback of a seeded multi-job run with stragglers and speculation
/// enabled, so the assertion fires between task starts, completions
/// (including speculative losers draining after their job finished),
/// submissions and control ticks.
#[test]
fn scoreboard_matches_oracle_rebuild() {
    use cluster::SlotKind;
    use hadoop_sim::{ClusterQuery, Scheduler, TaskReport};

    struct OracleChecked<S> {
        inner: S,
        checks: u64,
    }

    impl<S> OracleChecked<S> {
        fn verify(&mut self, query: &dyn ClusterQuery, site: &str) {
            let incremental = query.state();
            let oracle = query.rebuild_state();
            assert_eq!(
                *incremental,
                oracle,
                "scoreboard diverged from oracle at {site} (t={})",
                query.now()
            );
            self.checks += 1;
        }
    }

    impl<S: Scheduler> Scheduler for OracleChecked<S> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn select_job(
            &mut self,
            query: &dyn ClusterQuery,
            machine: MachineId,
            kind: SlotKind,
        ) -> Option<JobId> {
            self.verify(query, "select_job");
            self.inner.select_job(query, machine, kind)
        }
        fn on_job_submitted(&mut self, query: &dyn ClusterQuery, job: &JobSpec) {
            self.verify(query, "on_job_submitted");
            self.inner.on_job_submitted(query, job);
        }
        fn on_job_completed(&mut self, query: &dyn ClusterQuery, job: JobId) {
            self.verify(query, "on_job_completed");
            self.inner.on_job_completed(query, job);
        }
        fn on_task_completed(&mut self, query: &dyn ClusterQuery, report: &TaskReport) {
            self.verify(query, "on_task_completed");
            self.inner.on_task_completed(query, report);
        }
        fn on_control_interval(&mut self, query: &dyn ClusterQuery) {
            self.verify(query, "on_control_interval");
            self.inner.on_control_interval(query);
        }
    }

    check("scoreboard_matches_oracle_rebuild", 8, |rng| {
        let seed = rng.next_u64();
        let jobs_n = rng.uniform_u64(2, 5) as usize;
        let cfg = EngineConfig {
            noise: NoiseConfig {
                straggler_prob: 0.25,
                straggler_slowdown: (2.0, 6.0),
                utilization_jitter: 0.1,
            },
            speculation: SpeculationPolicy::Hadoop,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let jobs = (0..jobs_n)
            .map(|i| {
                let maps = rng.uniform_u64(6, 47) as u32;
                JobSpec::new(
                    JobId(i as u64),
                    Benchmark::of(
                        [
                            BenchmarkKind::Wordcount,
                            BenchmarkKind::Grep,
                            BenchmarkKind::Terasort,
                        ][i % 3],
                    ),
                    maps,
                    maps / 5,
                    SimTime::from_secs(i as u64 * 30),
                )
            })
            .collect();
        engine.submit_jobs(jobs);
        let mut checked = OracleChecked {
            inner: GreedyScheduler::new(),
            checks: 0,
        };
        let result = engine.run(&mut checked);
        assert!(result.drained);
        assert!(checked.checks > 100, "too few oracle checks ran");
    });
}

/// Streaming observers reproduce the post-hoc [`hadoop_sim::RunResult`]
/// aggregates bit for bit — makespan, total energy, energy series, interval
/// snapshots, per-job completion times, speculation counts — for every
/// scheduler, across random workloads, noise levels, speculation policies
/// and power-management features.
#[test]
fn streaming_stats_match_posthoc() {
    use eant::EAntConfig;
    use experiments::common::{Scenario, SchedulerKind};
    use hadoop_sim::trace::SharedObserver;
    use hadoop_sim::DvfsConfig;
    use metrics::observers::StreamingRunStats;
    use simcore::SimDuration;
    use workload::msd::MsdConfig;

    check("streaming_stats_match_posthoc", 6, |rng| {
        let seed = rng.next_u64();
        let mut scenario = Scenario::fast(seed);
        scenario.msd = MsdConfig {
            num_jobs: rng.uniform_u64(3, 8) as usize,
            task_scale: 32,
            submission_window: SimDuration::from_mins(rng.uniform_u64(2, 6)),
        };
        scenario.engine.speculation = [
            SpeculationPolicy::Off,
            SpeculationPolicy::Hadoop,
            SpeculationPolicy::Late,
        ][rng.uniform_u64(0, 2) as usize];
        if rng.chance(0.3) {
            scenario.engine.power_down = Some(PowerDownConfig::suspend_to_ram());
        }
        if rng.chance(0.3) {
            scenario.engine.dvfs = Some(DvfsConfig::conservative());
        }
        let num_machines = Fleet::paper_evaluation().len();
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::Fair,
            SchedulerKind::Tarazu,
            SchedulerKind::EAnt(EAntConfig::paper_default()),
        ] {
            let stats = SharedObserver::new(StreamingRunStats::new(num_machines));
            let handle = stats.clone();
            let result = scenario.run_observed(&kind, move |engine, _| {
                engine.attach_observer(Box::new(handle));
            });
            stats
                .with(|s| s.matches(&result))
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", kind.label()));
        }
    });
}

/// The scoreboard/oracle equivalence survives fault injection: machine
/// crashes, heartbeat-expiry deaths, task retries, map-output loss and
/// blacklisting all mutate the incremental state through the same paths the
/// oracle rebuilds from scratch.
#[test]
fn scoreboard_matches_oracle_under_faults() {
    use cluster::SlotKind;
    use hadoop_sim::{ClusterQuery, FaultConfig, Scheduler, TaskReport};
    use simcore::SimDuration;

    struct OracleChecked<S> {
        inner: S,
        checks: u64,
    }

    impl<S> OracleChecked<S> {
        fn verify(&mut self, query: &dyn ClusterQuery, site: &str) {
            let incremental = query.state();
            let oracle = query.rebuild_state();
            assert_eq!(
                *incremental,
                oracle,
                "scoreboard diverged from oracle at {site} (t={})",
                query.now()
            );
            self.checks += 1;
        }
    }

    impl<S: Scheduler> Scheduler for OracleChecked<S> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn select_job(
            &mut self,
            query: &dyn ClusterQuery,
            machine: MachineId,
            kind: SlotKind,
        ) -> Option<JobId> {
            self.verify(query, "select_job");
            self.inner.select_job(query, machine, kind)
        }
        fn on_job_submitted(&mut self, query: &dyn ClusterQuery, job: &JobSpec) {
            self.verify(query, "on_job_submitted");
            self.inner.on_job_submitted(query, job);
        }
        fn on_job_completed(&mut self, query: &dyn ClusterQuery, job: JobId) {
            self.verify(query, "on_job_completed");
            self.inner.on_job_completed(query, job);
        }
        fn on_task_completed(&mut self, query: &dyn ClusterQuery, report: &TaskReport) {
            self.verify(query, "on_task_completed");
            self.inner.on_task_completed(query, report);
        }
        fn on_control_interval(&mut self, query: &dyn ClusterQuery) {
            self.verify(query, "on_control_interval");
            self.inner.on_control_interval(query);
        }
    }

    check("scoreboard_matches_oracle_under_faults", 6, |rng| {
        let seed = rng.next_u64();
        let fault = FaultConfig {
            crash_mtbf: SimDuration::from_mins(rng.uniform_u64(10, 40)),
            crash_downtime: SimDuration::from_mins(rng.uniform_u64(1, 4)),
            task_failure_prob: rng.uniform_range(0.0, 0.15),
            blacklist_threshold: if rng.chance(0.5) { 8 } else { 0 },
            ..FaultConfig::none()
        };
        let cfg = EngineConfig {
            noise: NoiseConfig {
                straggler_prob: 0.2,
                straggler_slowdown: (2.0, 5.0),
                utilization_jitter: 0.1,
            },
            speculation: SpeculationPolicy::Hadoop,
            fault,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let jobs = (0..3)
            .map(|i| {
                let maps = rng.uniform_u64(8, 39) as u32;
                JobSpec::new(
                    JobId(i as u64),
                    Benchmark::of(
                        [
                            BenchmarkKind::Wordcount,
                            BenchmarkKind::Grep,
                            BenchmarkKind::Terasort,
                        ][i % 3],
                    ),
                    maps,
                    maps / 5,
                    SimTime::from_secs(i as u64 * 30),
                )
            })
            .collect();
        engine.submit_jobs(jobs);
        let mut checked = OracleChecked {
            inner: GreedyScheduler::new(),
            checks: 0,
        };
        let result = engine.run(&mut checked);
        assert!(result.drained, "faulted run failed to drain (seed {seed})");
        assert!(checked.checks > 100, "too few oracle checks ran");
    });
}

/// Conservation under faults: with recovery enabled, every task still
/// completes exactly once — crashes, retries and lost map outputs never
/// duplicate or strand work, so the completed-task count equals the
/// submitted count for any fault schedule.
#[test]
fn faults_conserve_tasks() {
    use hadoop_sim::FaultConfig;
    use simcore::SimDuration;

    check("faults_conserve_tasks", 16, |rng| {
        let seed = rng.next_u64();
        let fault = FaultConfig {
            crash_mtbf: SimDuration::from_mins(rng.uniform_u64(8, 50)),
            crash_downtime: SimDuration::from_mins(rng.uniform_u64(1, 5)),
            task_failure_prob: rng.uniform_range(0.0, 0.2),
            blacklist_threshold: [0, 6, 12][rng.uniform_u64(0, 2) as usize],
            ..FaultConfig::none()
        };
        fault.validate();
        let cfg = EngineConfig {
            noise: NoiseConfig::none(),
            fault,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let mut expected = 0u64;
        let jobs = (0..rng.uniform_u64(1, 4) as usize)
            .map(|i| {
                let maps = rng.uniform_u64(4, 47) as u32;
                let reduces = maps / 4;
                expected += u64::from(maps + reduces);
                JobSpec::new(
                    JobId(i as u64),
                    Benchmark::of(
                        [
                            BenchmarkKind::Wordcount,
                            BenchmarkKind::Grep,
                            BenchmarkKind::Terasort,
                        ][i % 3],
                    ),
                    maps,
                    reduces,
                    SimTime::from_secs(i as u64 * 20),
                )
            })
            .collect();
        engine.submit_jobs(jobs);
        let result = engine.run(&mut GreedyScheduler::new());
        assert!(result.drained, "faulted run failed to drain (seed {seed})");
        assert_eq!(
            result.total_tasks, expected,
            "task conservation violated under faults (seed {seed})"
        );
        // Failure counters are consistent: map outputs are only lost to
        // machine deaths, and blacklisting is impossible when disabled.
        if result.machine_failures == 0 {
            assert_eq!(result.map_outputs_lost, 0);
        }
        if fault.blacklist_threshold == 0 {
            assert_eq!(result.machines_blacklisted, 0);
        }
    });
}

/// The scenario codec's emitter and parser are exact inverses: any valid
/// [`experiments::scenario::ScenarioSpec`] — random workload shape, fleet
/// composition, scheduler grid, engine knobs — emits to canonical JSON that
/// parses back to an equal spec and re-emits byte-identically. This is the
/// contract that makes manifest keys (content hashes of the canonical form)
/// stable across load/save cycles.
#[test]
fn scenario_spec_round_trips_byte_identically() {
    use eant::EAntConfig;
    use experiments::common::SchedulerKind;
    use experiments::scenario::{
        FleetGroup, FleetSpec, ScenarioSpec, ServeSpec, ServeTolerance, Tolerance, WorkloadSpec,
    };
    use hadoop_sim::{DvfsConfig, FaultConfig, SloConfig};
    use simcore::{SimDuration, SimTime};
    use workload::arrival::{DiurnalPeak, DiurnalProfile, OpenArrival};
    use workload::mix::{BenchmarkChoice, StreamArrival, StreamSpec};
    use workload::msd::MsdConfig;
    use workload::open::{OpenJobTemplate, OpenStreamSpec};
    use workload::SizeClass;

    fn ident(rng: &mut SimRng, prefix: &str) -> String {
        format!("{prefix}-{:x}", rng.uniform_u64(0, 0xFFFF_FFFF))
    }

    fn gen_scheduler(rng: &mut SimRng) -> SchedulerKind {
        match rng.uniform_u64(0, 3) {
            0 => SchedulerKind::Fifo,
            1 => SchedulerKind::Fair,
            2 => SchedulerKind::Tarazu,
            _ => {
                let mut cfg = EAntConfig::paper_default();
                cfg.rho = rng.uniform_range(0.05, 1.0);
                cfg.beta = rng.uniform_range(0.0, 4.0);
                cfg.tau_min = rng.uniform_range(0.01, 0.5);
                cfg.tau_init = cfg.tau_min + rng.uniform_range(0.0, 5.0);
                cfg.tau_max = cfg.tau_init + rng.uniform_range(0.0, 100.0);
                cfg.local_boost = rng.uniform_range(1.0, 3.0);
                cfg.share_cap = rng.uniform_range(1.0, 4.0);
                cfg.exchange = [
                    ExchangeStrategy::None,
                    ExchangeStrategy::MachineLevel,
                    ExchangeStrategy::JobLevel,
                    ExchangeStrategy::Both,
                ][rng.uniform_u64(0, 3) as usize];
                cfg.negative_feedback = rng.chance(0.5);
                SchedulerKind::EAnt(cfg)
            }
        }
    }

    fn gen_arrival(rng: &mut SimRng) -> StreamArrival {
        match rng.uniform_u64(0, 3) {
            0 => StreamArrival::Poisson {
                rate_per_min: rng.uniform_range(0.2, 4.0),
                start_s: rng.uniform_range(0.0, 300.0),
            },
            1 => StreamArrival::Uniform {
                period_s: rng.uniform_range(10.0, 300.0),
                start_s: rng.uniform_range(0.0, 120.0),
            },
            2 => StreamArrival::Batches {
                at_s: (0..rng.uniform_u64(1, 3))
                    .map(|_| rng.uniform_range(0.0, 3600.0))
                    .collect(),
            },
            _ => StreamArrival::Diurnal {
                profile: DiurnalProfile {
                    base_per_min: rng.uniform_range(0.2, 2.0),
                    peaks: (0..rng.uniform_u64(1, 2))
                        .map(|_| DiurnalPeak {
                            center_s: rng.uniform_range(0.0, 3600.0),
                            width_s: rng.uniform_range(60.0, 600.0),
                            extra_per_min: rng.uniform_range(0.5, 8.0),
                        })
                        .collect(),
                },
                window_s: rng.uniform_range(1200.0, 7200.0),
            },
        }
    }

    fn gen_workload(rng: &mut SimRng) -> WorkloadSpec {
        if rng.chance(0.5) {
            WorkloadSpec::Msd(MsdConfig {
                num_jobs: rng.uniform_u64(1, 50) as usize,
                task_scale: rng.uniform_u64(16, 128) as u32,
                submission_window: SimDuration::from_secs(rng.uniform_u64(60, 3600)),
            })
        } else {
            let streams = (0..rng.uniform_u64(1, 3))
                .map(|_| StreamSpec {
                    label: ident(rng, "stream"),
                    benchmark: match rng.uniform_u64(0, 3) {
                        0 => BenchmarkChoice::Fixed(BenchmarkKind::Wordcount),
                        1 => BenchmarkChoice::Fixed(BenchmarkKind::Grep),
                        2 => BenchmarkChoice::Fixed(BenchmarkKind::Terasort),
                        _ => BenchmarkChoice::Rotate,
                    },
                    size_class: match rng.uniform_u64(0, 3) {
                        0 => None,
                        1 => Some(SizeClass::Small),
                        2 => Some(SizeClass::Medium),
                        _ => Some(SizeClass::Large),
                    },
                    maps: rng.uniform_u64(1, 200) as u32,
                    reduces: rng.uniform_u64(0, 32) as u32,
                    count: rng.uniform_u64(1, 20) as usize,
                    arrival: gen_arrival(rng),
                })
                .collect();
            WorkloadSpec::Streams(streams)
        }
    }

    fn gen_open_workload(rng: &mut SimRng) -> WorkloadSpec {
        let arrival = match rng.uniform_u64(0, 2) {
            0 => OpenArrival::Poisson {
                rate_per_min: rng.uniform_range(0.2, 6.0),
            },
            1 => OpenArrival::Diurnal {
                profile: DiurnalProfile {
                    base_per_min: rng.uniform_range(0.2, 2.0),
                    peaks: (0..rng.uniform_u64(1, 2))
                        .map(|_| DiurnalPeak {
                            center_s: rng.uniform_range(0.0, 3600.0),
                            width_s: rng.uniform_range(60.0, 600.0),
                            extra_per_min: rng.uniform_range(0.5, 8.0),
                        })
                        .collect(),
                },
                period_s: rng.uniform_range(1200.0, 7200.0),
            },
            _ => {
                let burst_min = rng.uniform_u64(1, 4) as u32;
                OpenArrival::Bursty {
                    bursts_per_min: rng.uniform_range(0.1, 2.0),
                    burst_min,
                    burst_max: burst_min + rng.uniform_u64(0, 4) as u32,
                }
            }
        };
        let templates = (0..rng.uniform_u64(1, 3))
            .map(|_| OpenJobTemplate {
                benchmark: match rng.uniform_u64(0, 2) {
                    0 => BenchmarkKind::Wordcount,
                    1 => BenchmarkKind::Grep,
                    _ => BenchmarkKind::Terasort,
                },
                size_class: match rng.uniform_u64(0, 3) {
                    0 => None,
                    1 => Some(SizeClass::Small),
                    2 => Some(SizeClass::Medium),
                    _ => Some(SizeClass::Large),
                },
                maps: rng.uniform_u64(1, 128) as u32,
                reduces: rng.uniform_u64(0, 16) as u32,
                weight: rng.uniform_range(0.1, 5.0),
            })
            .collect();
        WorkloadSpec::Open(OpenStreamSpec {
            label: ident(rng, "open"),
            arrival,
            templates,
        })
    }

    fn gen_serve(rng: &mut SimRng) -> ServeSpec {
        ServeSpec {
            warmup: SimDuration::from_secs(rng.uniform_u64(0, 3600)),
            measure: SimDuration::from_secs(rng.uniform_u64(600, 14_400)),
            fast_warmup: if rng.chance(0.5) {
                Some(SimDuration::from_secs(rng.uniform_u64(0, 600)))
            } else {
                None
            },
            fast_measure: if rng.chance(0.5) {
                Some(SimDuration::from_secs(rng.uniform_u64(300, 3600)))
            } else {
                None
            },
            tolerance: ServeTolerance {
                p99_rel: rng.uniform_range(0.001, 0.1),
                energy_per_job_rel: rng.uniform_range(0.001, 0.1),
            },
        }
    }

    fn gen_slo(rng: &mut SimRng) -> SloConfig {
        // At least one threshold must be set (the validator's invariant),
        // so p99 is always present and the rest are coin flips.
        SloConfig {
            window: SimDuration::from_secs(rng.uniform_u64(60, 1800)),
            ring_capacity: rng.uniform_u64(1, 4096) as usize,
            arm_after: SimTime::from_secs(rng.uniform_u64(0, 3600)),
            min_completions: rng.uniform_u64(0, 100) as usize,
            p95_sojourn: if rng.chance(0.5) {
                Some(SimDuration::from_secs(rng.uniform_u64(60, 7200)))
            } else {
                None
            },
            p99_sojourn: Some(SimDuration::from_secs(rng.uniform_u64(60, 7200))),
            max_queue_depth: if rng.chance(0.5) {
                Some(rng.uniform_u64(1, 100_000))
            } else {
                None
            },
            max_backlog_growth_per_min: if rng.chance(0.5) {
                Some(rng.uniform_range(0.1, 50.0))
            } else {
                None
            },
        }
    }

    fn gen_fleet(rng: &mut SimRng) -> FleetSpec {
        if rng.chance(0.4) {
            FleetSpec::Paper
        } else {
            let names = ["Desktop", "XeonE5", "Atom", "T110", "T420", "T320", "T620"];
            let groups = (0..rng.uniform_u64(1, 4))
                .map(|_| FleetGroup {
                    profile: names[rng.uniform_u64(0, names.len() as u64 - 1) as usize].to_owned(),
                    count: rng.uniform_u64(1, 4) as usize,
                    slots: if rng.chance(0.3) {
                        Some((
                            rng.uniform_u64(1, 6) as usize,
                            rng.uniform_u64(0, 3) as usize,
                        ))
                    } else {
                        None
                    },
                })
                .collect();
            FleetSpec::Custom {
                groups,
                rack_size: if rng.chance(0.5) {
                    Some(rng.uniform_u64(2, 8) as usize)
                } else {
                    None
                },
            }
        }
    }

    fn gen_engine(rng: &mut SimRng) -> EngineConfig {
        EngineConfig {
            heartbeat: SimDuration::from_secs(rng.uniform_u64(1, 10)),
            control_interval: SimDuration::from_secs(rng.uniform_u64(60, 600)),
            reduce_slowstart: rng.uniform_range(0.1, 1.0),
            noise: if rng.chance(0.3) {
                NoiseConfig::none()
            } else {
                let lo = rng.uniform_range(1.5, 3.0);
                NoiseConfig {
                    straggler_prob: rng.uniform_range(0.0, 0.5),
                    straggler_slowdown: (lo, lo + rng.uniform_range(0.1, 3.0)),
                    utilization_jitter: rng.uniform_range(0.0, 0.3),
                }
            },
            fault: if rng.chance(0.5) {
                hadoop_sim::FaultConfig::none()
            } else {
                FaultConfig {
                    crash_mtbf: SimDuration::from_secs(rng.uniform_u64(600, 3600)),
                    crash_downtime: SimDuration::from_secs(rng.uniform_u64(60, 300)),
                    task_failure_prob: rng.uniform_range(0.0, 0.2),
                    blacklist_threshold: [0, 6, 12][rng.uniform_u64(0, 2) as usize],
                    ..FaultConfig::none()
                }
            },
            power_down: if rng.chance(0.3) {
                Some(PowerDownConfig {
                    idle_timeout: SimDuration::from_secs(rng.uniform_u64(30, 600)),
                    standby_watts: rng.uniform_range(1.0, 5.0),
                    wake_latency: SimDuration::from_secs(rng.uniform_u64(1, 10)),
                })
            } else {
                None
            },
            speculation: [
                SpeculationPolicy::Off,
                SpeculationPolicy::Hadoop,
                SpeculationPolicy::Late,
            ][rng.uniform_u64(0, 2) as usize],
            dvfs: if rng.chance(0.3) {
                Some(DvfsConfig {
                    eco_factor: rng.uniform_range(0.5, 1.0),
                    low_utilization: rng.uniform_range(0.1, 0.3),
                    high_utilization: rng.uniform_range(0.6, 0.9),
                })
            } else {
                None
            },
            speculation_threshold: rng.uniform_range(1.0, 3.0),
            max_sim_time: SimDuration::from_secs(rng.uniform_u64(3600, 1_000_000)),
            ..EngineConfig::default()
        }
    }

    check("scenario_spec_round_trips_byte_identically", 64, |rng| {
        // A scenario is either closed (msd/streams, no serve) or an open
        // service scenario (open workload + serve section) — the spec
        // validator rejects mixing, so the generator picks one shape.
        let open = rng.chance(0.3);
        let spec = ScenarioSpec {
            name: ident(rng, "scenario"),
            description: format!("prop \"case\" \\ {}", ident(rng, "desc")),
            seeds: (0..rng.uniform_u64(1, 3)).map(|_| rng.next_u64()).collect(),
            schedulers: (0..rng.uniform_u64(1, 4))
                .map(|_| gen_scheduler(rng))
                .collect(),
            workload: if open {
                gen_open_workload(rng)
            } else {
                gen_workload(rng)
            },
            fast_workload: if rng.chance(0.5) {
                Some(if open {
                    gen_open_workload(rng)
                } else {
                    gen_workload(rng)
                })
            } else {
                None
            },
            serve: if open { Some(gen_serve(rng)) } else { None },
            slo: if rng.chance(0.3) {
                Some(gen_slo(rng))
            } else {
                None
            },
            fleet: gen_fleet(rng),
            engine: gen_engine(rng),
            tolerance: Tolerance {
                energy_rel: rng.uniform_range(0.001, 0.1),
                makespan_rel: rng.uniform_range(0.001, 0.1),
            },
        };
        let first = spec.canonical();
        let reparsed = ScenarioSpec::parse(&first)
            .unwrap_or_else(|e| panic!("canonical form failed to parse: {e}\n{first}"));
        assert_eq!(reparsed, spec, "parse is not the emitter's inverse");
        assert_eq!(
            reparsed.canonical(),
            first,
            "emit ∘ parse ∘ emit is not byte-stable"
        );
    });
}
