//! Property-based tests (proptest) over the core data structures and
//! cross-crate invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cluster::hdfs::BlockPlacer;
use cluster::{profiles, Fleet, MachineId};
use eant::{heuristic, EnergyModel, ExchangeStrategy, PheromoneTable, TaskAnalyzer, TaskEnergyRecord};
use hadoop_sim::{
    Engine, EngineConfig, GreedyScheduler, NoiseConfig, PowerDownConfig, SpeculationPolicy,
};
use simcore::{EventQueue, SimRng, SimTime};
use workload::{Benchmark, JobId, JobSpec};

proptest! {
    /// Pheromone values stay within [tau_min, tau_max] for any deposit
    /// pattern, with or without negative feedback.
    #[test]
    fn pheromone_bounds_hold(
        deposits in proptest::collection::vec(
            proptest::collection::vec(-1.0e6f64..1.0e6, 4),
            1..6,
        ),
        rho in 0.01f64..1.0,
        negative in any::<bool>(),
    ) {
        let mut table = PheromoneTable::new(4, 1.0, 0.05, 100.0);
        let map: BTreeMap<JobId, Vec<f64>> = deposits
            .into_iter()
            .enumerate()
            .map(|(i, d)| (JobId(i as u64), d))
            .collect();
        table.apply_deposits(&map, rho, negative);
        for (&job, _) in &map {
            for m in 0..4 {
                let tau = table.get(job, MachineId(m));
                prop_assert!((0.05..=100.0).contains(&tau), "tau = {tau}");
            }
        }
    }

    /// Eq. 3 probabilities always form a distribution.
    #[test]
    fn pheromone_probabilities_sum_to_one(
        deposits in proptest::collection::vec(0.0f64..1.0e4, 8),
        rho in 0.01f64..1.0,
    ) {
        let mut table = PheromoneTable::new(8, 1.0, 0.05, 1.0e4);
        let mut map = BTreeMap::new();
        map.insert(JobId(0), deposits);
        table.apply_deposits(&map, rho, true);
        let p = table.probabilities(JobId(0));
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        prop_assert!(p.iter().all(|&x| x > 0.0));
    }

    /// Events always pop in nondecreasing time order.
    #[test]
    fn event_queue_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// The fairness heuristic is finite, positive, and monotone in the
    /// deficit.
    #[test]
    fn fairness_heuristic_is_sane(
        min_share in 0.0f64..200.0,
        occupied in 0u32..500,
        pool in 1usize..500,
    ) {
        let eta = heuristic::fairness(min_share, occupied, pool);
        prop_assert!(eta.is_finite() && eta > 0.0, "eta = {eta}");
        // One more occupied slot can never raise the priority.
        let eta_more = heuristic::fairness(min_share, occupied + 1, pool);
        prop_assert!(eta_more <= eta + 1e-12);
    }

    /// Eq. 2 estimates are non-negative and monotone in utilization.
    #[test]
    fn energy_model_is_monotone(
        idle in 0.0f64..200.0,
        alpha in 0.0f64..200.0,
        slots in 1usize..12,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
        dur in 0.0f64..10_000.0,
    ) {
        let model = EnergyModel::new(idle, alpha, slots);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let e_lo = model.estimate_mean(lo, dur);
        let e_hi = model.estimate_mean(hi, dur);
        prop_assert!(e_lo >= 0.0);
        prop_assert!(e_hi >= e_lo - 1e-9);
    }

    /// Block placement never duplicates replicas and never exceeds the
    /// fleet.
    #[test]
    fn block_placement_is_valid(seed in any::<u64>(), count in 1usize..50) {
        let fleet = Fleet::paper_evaluation();
        let mut placer = BlockPlacer::new(3);
        let mut rng = SimRng::seed_from(seed);
        for block in placer.place(&fleet, count, &mut rng) {
            prop_assert!(!block.replicas.is_empty());
            prop_assert!(block.replicas.len() <= 3);
            let mut seen = block.replicas.clone();
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), block.replicas.len());
            prop_assert!(block.replicas.iter().all(|m| m.index() < fleet.len()));
        }
    }

    /// The analyzer's deposits are non-negative and only land on machines
    /// that (transitively, via exchange groups) saw tasks.
    #[test]
    fn analyzer_deposits_are_nonnegative(
        energies in proptest::collection::vec(1.0f64..10_000.0, 1..40),
        exchange_idx in 0usize..4,
    ) {
        let exchange = [
            ExchangeStrategy::None,
            ExchangeStrategy::MachineLevel,
            ExchangeStrategy::JobLevel,
            ExchangeStrategy::Both,
        ][exchange_idx];
        let mut analyzer = TaskAnalyzer::new(4);
        for (i, &e) in energies.iter().enumerate() {
            analyzer.record(TaskEnergyRecord {
                job: JobId((i % 3) as u64),
                job_group: format!("g{}", i % 2),
                machine: MachineId(i % 4),
                energy_joules: e,
            });
        }
        let fb = analyzer.compute(&[0, 0, 1, 1], exchange);
        prop_assert_eq!(fb.tasks_analyzed, energies.len());
        for row in fb.deposits.values() {
            prop_assert!(row.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    }

    /// Any small job mix drains on the paper fleet under the reference
    /// scheduler, with tasks conserved.
    #[test]
    fn engine_drains_arbitrary_small_workloads(
        seed in any::<u64>(),
        maps in proptest::collection::vec(1u32..40, 1..5),
    ) {
        let cfg = EngineConfig {
            noise: NoiseConfig::none(),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let mut expected = 0u64;
        let jobs = maps
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let reduces = m / 4;
                expected += u64::from(m + reduces);
                JobSpec::new(
                    JobId(i as u64),
                    Benchmark::of(
                        [workload::BenchmarkKind::Wordcount,
                         workload::BenchmarkKind::Grep,
                         workload::BenchmarkKind::Terasort][i % 3],
                    ),
                    m,
                    reduces,
                    SimTime::from_secs(i as u64 * 10),
                )
            })
            .collect();
        engine.submit_jobs(jobs);
        let result = engine.run(&mut GreedyScheduler::new());
        prop_assert!(result.drained);
        prop_assert_eq!(result.total_tasks, expected);
    }

    /// With any speculation policy and straggler noise, every workload
    /// drains with exact task conservation — backups never double-count.
    #[test]
    fn speculation_conserves_tasks(
        seed in any::<u64>(),
        policy_idx in 0usize..3,
        maps in 8u32..60,
    ) {
        let policy = [
            SpeculationPolicy::Off,
            SpeculationPolicy::Hadoop,
            SpeculationPolicy::Late,
        ][policy_idx];
        let cfg = EngineConfig {
            noise: NoiseConfig {
                straggler_prob: 0.2,
                straggler_slowdown: (2.0, 6.0),
                utilization_jitter: 0.1,
            },
            speculation: policy,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        let reduces = maps / 6;
        engine.submit_jobs(vec![JobSpec::new(
            JobId(0),
            Benchmark::wordcount(),
            maps,
            reduces,
            SimTime::ZERO,
        )]);
        let result = engine.run(&mut GreedyScheduler::new());
        prop_assert!(result.drained);
        prop_assert_eq!(result.total_tasks, u64::from(maps + reduces));
        prop_assert!(result.wasted_attempts <= result.speculative_attempts);
        if policy == SpeculationPolicy::Off {
            prop_assert_eq!(result.speculative_attempts, 0);
        }
    }

    /// Power-down never strands work and never *increases* energy relative
    /// to physical limits (total energy is at least the standby floor).
    #[test]
    fn power_down_is_safe(seed in any::<u64>(), gap_mins in 1u64..30) {
        let cfg = EngineConfig {
            noise: NoiseConfig::none(),
            power_down: Some(PowerDownConfig::suspend_to_ram()),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(Fleet::paper_evaluation(), cfg, seed);
        engine.submit_jobs(vec![
            JobSpec::new(JobId(0), Benchmark::grep(), 16, 2, SimTime::ZERO),
            JobSpec::new(
                JobId(1),
                Benchmark::grep(),
                16,
                2,
                SimTime::from_secs(gap_mins * 60),
            ),
        ]);
        let result = engine.run(&mut GreedyScheduler::new());
        prop_assert!(result.drained, "power-down must never strand work");
        prop_assert_eq!(result.total_tasks, 36);
        // Energy floor: every machine draws at least standby power for the
        // whole run.
        let floor = 2.5 * 16.0 * result.makespan.as_secs_f64();
        prop_assert!(result.total_energy_joules() >= floor * 0.99);
    }

    /// Machine energy meters never decrease and never drop below idle
    /// draw.
    #[test]
    fn meter_monotone_and_bounded_below(
        spans in proptest::collection::vec((1u64..100, 0.0f64..1.5), 1..30),
    ) {
        let profile = profiles::desktop();
        let mut machine = cluster::Machine::new(MachineId(0), profile.clone());
        let mut now = SimTime::ZERO;
        let mut last_energy = 0.0;
        for (secs, _load) in spans {
            now = now + simcore::SimDuration::from_secs(secs);
            machine.sync(now);
            let e = machine.meter().total_joules();
            prop_assert!(e >= last_energy);
            // Idle machine: exactly idle power integrated.
            let idle_floor = profile.power().idle_watts()
                * now.saturating_since(SimTime::ZERO).as_secs_f64();
            prop_assert!(e >= idle_floor - 1e-6);
            last_energy = e;
        }
    }
}
