//! Integration tests for the scenario subsystem: the malformed-file error
//! matrix (every rejection names the offending line and snippet), the
//! committed scenario library's validity and determinism, and the run-DB
//! regression gate's behavior on perturbed candidates.

use experiments::scenario::{compare, library_dir, load_spec, RunDb, RunRecord, ScenarioSpec};
use metrics::emit::run_result_json;

/// A well-formed spec the malformed cases are derived from.
const VALID: &str = r#"{
  "name": "matrix",
  "seeds": [7],
  "schedulers": [{"kind": "fair"}],
  "workload": {"kind": "msd", "num_jobs": 2, "task_scale": 32,
               "submission_window_s": 60}
}"#;

#[test]
fn the_base_document_is_valid() {
    ScenarioSpec::parse(VALID).expect("matrix base document parses");
}

/// Every malformed document is rejected with an error that carries the
/// line number and the offending line's text — never a bare message, and
/// never a panic from a downstream constructor.
#[test]
fn malformed_specs_name_the_offending_line() {
    struct Case {
        what: &'static str,
        input: String,
        expect: &'static [&'static str],
    }
    let cases = [
        Case {
            what: "truncated document",
            input: VALID[..VALID.len() - 20].to_owned(),
            expect: &["line "],
        },
        Case {
            what: "bare garbage",
            input: "not json at all".to_owned(),
            expect: &["line 1: "],
        },
        Case {
            what: "unknown top-level key",
            input: VALID.replacen("\"seeds\"", "\"seedz\"", 1),
            expect: &["line 3: ", "`seedz`: unknown key"],
        },
        Case {
            what: "unknown nested engine key",
            input: VALID.replacen(
                "\"name\": \"matrix\",",
                "\"name\": \"matrix\",\n  \"engine\": {\"heartbeats\": 3},",
                1,
            ),
            expect: &["`engine.heartbeats`: unknown key", "offending line:"],
        },
        Case {
            what: "zero crash MTBF",
            input: VALID.replacen(
                "\"name\": \"matrix\",",
                "\"name\": \"matrix\",\n  \"engine\": {\"fault\": {\"crash_mtbf_s\": 0}},",
                1,
            ),
            expect: &[
                "`engine.fault.crash_mtbf_s`: must be positive",
                "offending line:",
            ],
        },
        Case {
            what: "fault block that enables nothing",
            input: VALID.replacen(
                "\"name\": \"matrix\",",
                "\"name\": \"matrix\",\n  \"engine\": {\"fault\": {\"missed_heartbeats\": 5}},",
                1,
            ),
            expect: &["`engine.fault`: fault block enables nothing"],
        },
        Case {
            what: "missing required name",
            input: VALID.replacen("\"name\": \"matrix\",", "", 1),
            expect: &["`name`: missing required key"],
        },
        Case {
            what: "missing required workload",
            input: VALID.replacen(
                "\"workload\": {\"kind\": \"msd\", \"num_jobs\": 2, \"task_scale\": 32,\n               \"submission_window_s\": 60}",
                "\"description\": \"no workload\"",
                1,
            ),
            expect: &["`workload`: missing required key"],
        },
        Case {
            what: "empty seeds",
            input: VALID.replacen("[7]", "[]", 1),
            expect: &["`seeds`: ", "offending line:"],
        },
        Case {
            what: "wrong seed type",
            input: VALID.replacen("[7]", "[-7]", 1),
            expect: &["`seeds[0]`: ", "offending line:"],
        },
        Case {
            what: "unknown scheduler kind",
            input: VALID.replacen("\"fair\"", "\"lifo\"", 1),
            expect: &["`schedulers[0].kind`: "],
        },
        Case {
            what: "unknown benchmark in a stream",
            input: VALID.replacen(
                "{\"kind\": \"msd\", \"num_jobs\": 2, \"task_scale\": 32,\n               \"submission_window_s\": 60}",
                "{\"kind\": \"streams\", \"streams\": [{\"label\": \"t\", \"benchmark\": \"sort\", \"maps\": 2, \"count\": 1, \"arrival\": {\"kind\": \"uniform\", \"period_s\": 30}}]}",
                1,
            ),
            expect: &["`workload.streams[0].benchmark`: "],
        },
        Case {
            what: "unknown fleet profile",
            input: VALID.replacen(
                "\"name\": \"matrix\",",
                "\"name\": \"matrix\",\n  \"fleet\": {\"groups\": [{\"profile\": \"Cray\", \"count\": 2}]},",
                1,
            ),
            expect: &["`fleet.groups[0].profile`: "],
        },
    ];
    for case in cases {
        let err = ScenarioSpec::parse(&case.input)
            .map(|_| ())
            .expect_err(case.what);
        for needle in case.expect {
            assert!(
                err.contains(needle),
                "{}: error should contain {needle:?}, got: {err}",
                case.what
            );
        }
    }
}

/// Every committed scenario file parses, survives the emit∘parse∘emit
/// round trip, and declares at least one seed and scheduler.
#[test]
fn committed_library_is_valid_and_canonical_round_trips() {
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(library_dir())
        .expect("scenarios/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let spec = load_spec(&path).unwrap_or_else(|e| panic!("{e}"));
        assert!(!spec.seeds.is_empty(), "{}: no seeds", spec.name);
        assert!(!spec.schedulers.is_empty(), "{}: no schedulers", spec.name);
        let canonical = spec.canonical();
        let reparsed = ScenarioSpec::parse(&canonical)
            .unwrap_or_else(|e| panic!("{}: canonical form failed to parse: {e}", spec.name));
        assert_eq!(
            reparsed, spec,
            "{}: canonical round trip drifted",
            spec.name
        );
        seen += 1;
    }
    assert!(seen >= 6, "scenario library shrank to {seen} files");
}

/// Executing a committed scenario twice produces byte-identical serialized
/// results — the determinism contract every file in `scenarios/` must hold
/// for the run DB's manifest keys to mean anything.
#[test]
fn library_runs_are_deterministic() {
    for name in ["diurnal-double-peak", "deadline-batches"] {
        let spec = load_spec(&library_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{e}"));
        let kind = spec.schedulers[0].clone();
        let seed = spec.seeds[0];
        let first = run_result_json(&spec.execute(&kind, seed, true));
        let second = run_result_json(&spec.execute(&kind, seed, true));
        assert!(
            first == second,
            "{name}: consecutive runs of the same cell differ"
        );
    }
}

/// The regression gate end to end on real run records: a candidate DB
/// rebuilt from the same scenario passes against itself, and an injected
/// energy perturbation beyond the tolerance makes `compare` report a
/// violation — the property the CI gate relies on.
#[test]
fn gate_fails_on_injected_perturbation_of_real_runs() {
    let spec = load_spec(&library_dir().join("diurnal-double-peak.json"))
        .unwrap_or_else(|e| panic!("{e}"));
    let kind = spec.schedulers[0].clone();
    let seed = spec.seeds[0];
    let record = RunRecord::new(&spec, &kind, seed, true, &spec.execute(&kind, seed, true));

    let mut baseline = RunDb::default();
    baseline.upsert(record.clone());
    let mut candidate = RunDb::default();
    candidate.upsert(record.clone());
    let clean = compare(&baseline, &candidate);
    assert_eq!(
        clean.violations(),
        0,
        "identical DBs must pass:\n{}",
        clean.render()
    );

    let mut perturbed_record = record;
    perturbed_record.energy_joules *= 1.0 + 5.0 * spec.tolerance.energy_rel;
    let mut perturbed = RunDb::default();
    perturbed.upsert(perturbed_record);
    let report = compare(&baseline, &perturbed);
    assert_eq!(
        report.violations(),
        1,
        "perturbed energy must trip the gate:\n{}",
        report.render()
    );
    assert!(
        report.render().contains("energy drift"),
        "{}",
        report.render()
    );
}

/// The committed CI baseline stays in sync with the scenario library:
/// every (scenario, scheduler, seed) cell in `scenarios/` has a baseline
/// record whose manifest key still matches the current spec — so a spec
/// edit without a baseline refresh fails here, not in CI.
#[test]
fn committed_baseline_covers_the_library_with_current_keys() {
    let baseline_path = library_dir().join("../runs/baseline-fast.jsonl");
    let db = RunDb::load(&baseline_path).unwrap_or_else(|e| panic!("{e}"));
    let mut entries: Vec<_> = std::fs::read_dir(library_dir())
        .expect("scenarios/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let spec = load_spec(&path).unwrap_or_else(|e| panic!("{e}"));
        for kind in &spec.schedulers {
            for &seed in &spec.seeds {
                let key = spec.manifest_key(kind, seed, true);
                assert!(
                    db.records.iter().any(|r| r.key == key),
                    "{}: no baseline record for {} seed {seed} (key {key}); \
                     regenerate runs/baseline-fast.jsonl",
                    spec.name,
                    kind.label()
                );
            }
        }
    }
}
