//! Cross-scheduler integration tests: the paper's headline claims, checked
//! on multi-seed averages of the scaled MSD workload.

use baselines::{FairScheduler, FifoScheduler, TarazuScheduler};
use cluster::Fleet;
use eant::{EAntConfig, EAntScheduler};
use hadoop_sim::{Engine, EngineConfig, RunResult, Scheduler};
use simcore::{SimDuration, SimRng};
use workload::msd::MsdConfig;

const SEEDS: [u64; 5] = [2015, 7, 99, 42, 1234];

fn run(seed: u64, scheduler: &mut dyn Scheduler) -> RunResult {
    let jobs = MsdConfig {
        num_jobs: 30,
        task_scale: 64,
        submission_window: SimDuration::from_mins(12),
    }
    .generate(&mut SimRng::seed_from(seed).fork("msd"));
    let mut engine = Engine::new(Fleet::paper_evaluation(), EngineConfig::default(), seed);
    engine.submit_jobs(jobs);
    engine.run(scheduler)
}

fn mean_energy(make: impl Fn(u64) -> Box<dyn Scheduler>) -> f64 {
    SEEDS
        .iter()
        .map(|&s| run(s, make(s).as_mut()).total_energy_joules())
        .sum::<f64>()
        / SEEDS.len() as f64
}

#[test]
fn eant_saves_energy_vs_fair_scheduler() {
    // Headline claim (Fig. 8a): E-Ant beats the Fair Scheduler on total
    // energy — the paper reports 17 % on one physical run; we require a
    // ≥3 % margin on the multi-seed mean to stay robust to simulation
    // variance (the 10-seed mean is ~10 %, see EXPERIMENTS.md).
    let fair = mean_energy(|_| Box::new(FairScheduler::new()));
    let eant = mean_energy(|s| Box::new(EAntScheduler::new(EAntConfig::paper_default(), s)));
    let saving = (fair - eant) / fair * 100.0;
    assert!(saving > 3.0, "E-Ant saving vs Fair was only {saving:.1}%");
}

#[test]
fn eant_saves_energy_vs_tarazu() {
    // Headline claim (Fig. 8a): E-Ant beats Tarazu too (paper: 12 %).
    let tarazu = mean_energy(|s| Box::new(TarazuScheduler::new(s)));
    let eant = mean_energy(|s| Box::new(EAntScheduler::new(EAntConfig::paper_default(), s)));
    let saving = (tarazu - eant) / tarazu * 100.0;
    assert!(saving > 0.5, "E-Ant saving vs Tarazu was only {saving:.1}%");
}

#[test]
fn tarazu_beats_fair_on_energy() {
    // §VI-A: "Tarazu is more energy efficient than Fair Scheduler since
    // Tarazu could reduce job execution times".
    let fair = mean_energy(|_| Box::new(FairScheduler::new()));
    let tarazu = mean_energy(|s| Box::new(TarazuScheduler::new(s)));
    assert!(
        tarazu < fair,
        "Tarazu ({tarazu:.0} J) should use less energy than Fair ({fair:.0} J)"
    );
}

#[test]
fn all_schedulers_complete_the_same_workload() {
    for seed in [1u64, 2] {
        let totals: Vec<u64> = [
            Box::new(FifoScheduler::new()) as Box<dyn Scheduler>,
            Box::new(FairScheduler::new()),
            Box::new(TarazuScheduler::new(seed)),
            Box::new(EAntScheduler::new(EAntConfig::paper_default(), seed)),
        ]
        .into_iter()
        .map(|mut s| {
            let r = run(seed, s.as_mut());
            assert!(r.drained, "{} did not drain", r.scheduler);
            r.total_tasks
        })
        .collect();
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "schedulers completed different task counts: {totals:?}"
        );
    }
}

#[test]
fn eant_adapts_workload_mix_by_machine_type() {
    // Fig. 9(a): aggregated over seeds, the compute-optimized T420 group
    // hosts a larger share of CPU-bound (Wordcount) work than the Atom.
    let mut t420 = (0.0, 0.0);
    let mut atom = (0.0, 0.0);
    for &seed in &SEEDS {
        let r = run(
            seed,
            &mut EAntScheduler::new(EAntConfig::paper_default(), seed),
        );
        let by = r.tasks_by_profile_and_benchmark();
        let get = |p: &str, b: &str| *by.get(&(p.to_owned(), b.to_owned())).unwrap_or(&0) as f64;
        t420.0 += get("T420", "Wordcount");
        t420.1 += get("T420", "Grep") + get("T420", "Terasort");
        atom.0 += get("Atom", "Wordcount");
        atom.1 += get("Atom", "Grep") + get("Atom", "Terasort");
    }
    let t420_share = t420.0 / (t420.0 + t420.1);
    let atom_share = atom.0 / (atom.0 + atom.1);
    assert!(
        t420_share > atom_share,
        "Wordcount share: T420 {t420_share:.2} vs Atom {atom_share:.2}"
    );
}

#[test]
fn eant_completion_times_remain_competitive() {
    // Fig. 8(c): E-Ant must not sacrifice job performance — its mean
    // makespan stays within 25 % of Fair's on the multi-seed average.
    let fair: f64 = SEEDS
        .iter()
        .map(|&s| run(s, &mut FairScheduler::new()).makespan.as_secs_f64())
        .sum::<f64>()
        / SEEDS.len() as f64;
    let eant: f64 = SEEDS
        .iter()
        .map(|&s| {
            run(s, &mut EAntScheduler::new(EAntConfig::paper_default(), s))
                .makespan
                .as_secs_f64()
        })
        .sum::<f64>()
        / SEEDS.len() as f64;
    assert!(
        eant < fair * 1.25,
        "E-Ant mean makespan {eant:.0}s vs Fair {fair:.0}s"
    );
}
