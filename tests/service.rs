//! Determinism and correctness of open-stream (service-mode) runs.
//!
//! Mirrors `determinism.rs` for the horizon-stopped engine: the same seed
//! must produce byte-identical serialized results for poisson, diurnal and
//! bursty open streams regardless of sweep thread count and across
//! consecutive runs. On top of that, the lazily-pulled stream must match
//! an eagerly materialized oracle over the finite horizon — the engine
//! never perturbs the stream's RNG, and no arrival inside the horizon is
//! lost or reordered.

use eant::EAntConfig;
use experiments::common::{parallel_runs_with_workers, SchedulerKind};
use experiments::scenario::{
    FleetSpec, ScenarioSpec, ServeSpec, ServeTolerance, Tolerance, WorkloadSpec,
};
use hadoop_sim::trace::{SharedObserver, VecRecorder};
use hadoop_sim::{EngineConfig, RunResult, TaskReport};
use metrics::emit::{run_result_json, ToJson};
use simcore::{SimDuration, SimRng, SimTime};
use workload::arrival::{DiurnalPeak, DiurnalProfile, OpenArrival};
use workload::open::{OpenJobTemplate, OpenStream, OpenStreamSpec};
use workload::{BenchmarkKind, JobId, SizeClass};

const WARMUP_S: u64 = 180;
const MEASURE_S: u64 = 900;

/// The three open arrival laws, at rates the paper fleet sustains.
fn open_laws() -> Vec<(&'static str, OpenArrival)> {
    vec![
        ("poisson", OpenArrival::Poisson { rate_per_min: 4.0 }),
        (
            "diurnal",
            OpenArrival::Diurnal {
                profile: DiurnalProfile {
                    base_per_min: 2.0,
                    peaks: vec![DiurnalPeak {
                        center_s: 300.0,
                        width_s: 120.0,
                        extra_per_min: 5.0,
                    }],
                },
                period_s: 600.0,
            },
        ),
        (
            "bursty",
            OpenArrival::Bursty {
                bursts_per_min: 1.0,
                burst_min: 2,
                burst_max: 5,
            },
        ),
    ]
}

fn stream_spec(label: &str, arrival: OpenArrival) -> OpenStreamSpec {
    OpenStreamSpec {
        label: label.to_owned(),
        arrival,
        templates: vec![
            OpenJobTemplate {
                benchmark: BenchmarkKind::Wordcount,
                size_class: None,
                maps: 16,
                reduces: 2,
                weight: 2.0,
            },
            OpenJobTemplate {
                benchmark: BenchmarkKind::Grep,
                size_class: Some(SizeClass::Small),
                maps: 12,
                reduces: 1,
                weight: 1.0,
            },
        ],
    }
}

/// A small service-mode scenario around one open stream.
fn serve_scenario(label: &str, arrival: OpenArrival) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("service-{label}"),
        description: String::new(),
        seeds: vec![11],
        schedulers: vec![SchedulerKind::Fair],
        workload: WorkloadSpec::Open(stream_spec(label, arrival)),
        fast_workload: None,
        serve: Some(ServeSpec {
            warmup: SimDuration::from_secs(WARMUP_S),
            measure: SimDuration::from_secs(MEASURE_S),
            fast_warmup: None,
            fast_measure: None,
            tolerance: ServeTolerance::default(),
        }),
        slo: None,
        fleet: FleetSpec::Paper,
        engine: EngineConfig::default(),
        tolerance: Tolerance::default(),
    }
}

/// Runs one serve cell with a streaming report recorder attached, so the
/// serialized bytes cover per-task reports as well as the result.
fn run_with_reports(spec: &ScenarioSpec, kind: &SchedulerKind) -> (RunResult, Vec<TaskReport>) {
    let recorder: SharedObserver<VecRecorder<TaskReport>> = SharedObserver::new(VecRecorder::new());
    let handle = recorder.clone();
    let result = spec.execute_observed(kind, spec.seeds[0], false, move |engine, _| {
        engine.attach_report_observer(Box::new(handle));
    });
    let reports = recorder
        .try_into_inner()
        .unwrap_or_else(|_| panic!("engine dropped its observer handle"))
        .into_events()
        .into_iter()
        .map(|(_, report)| report)
        .collect();
    (result, reports)
}

fn run_bytes((result, reports): &(RunResult, Vec<TaskReport>)) -> String {
    let mut out = run_result_json(result);
    for report in reports {
        out.push('\n');
        out.push_str(&report.to_json().render());
    }
    out
}

/// The (arrival law × scheduler) sweep on `workers` threads.
fn sweep(workers: usize) -> Vec<String> {
    let kinds = [
        SchedulerKind::Fair,
        SchedulerKind::EAnt(EAntConfig::paper_default()),
    ];
    let tasks: Vec<_> = open_laws()
        .into_iter()
        .flat_map(|(label, arrival)| {
            kinds.iter().map(move |kind| {
                let kind = kind.clone();
                let spec = serve_scenario(label, arrival.clone());
                move || run_with_reports(&spec, &kind)
            })
        })
        .collect();
    parallel_runs_with_workers(workers, tasks)
        .iter()
        .map(run_bytes)
        .collect()
}

/// Open-stream runs are thread-count invariant: the worker pool decides
/// only when a cell runs, never what it computes.
#[test]
fn open_stream_sweep_is_thread_count_invariant() {
    let single = sweep(1);
    let multi = sweep(4);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a, b, "run {i} differs between 1-thread and 4-thread sweeps");
    }
}

/// Two consecutive sweeps in one process agree: no global mutable state
/// leaks between horizon runs.
#[test]
fn consecutive_open_stream_sweeps_agree() {
    let first = sweep(2);
    let second = sweep(2);
    assert_eq!(first, second);
}

/// Property: the engine's lazily-pulled stream equals an eagerly
/// materialized oracle over the horizon. For every arrival law and a
/// handful of seeds, registering jobs one arrival at a time (interleaved
/// with all engine activity) must yield exactly the jobs an up-front
/// materialization of the same stream produces with `submit_at` inside
/// the horizon — same ids, benchmarks, task counts and submit times.
#[test]
fn lazy_stream_matches_eager_oracle_over_horizon() {
    let deadline =
        SimTime::ZERO + SimDuration::from_secs(WARMUP_S) + SimDuration::from_secs(MEASURE_S);
    for (label, arrival) in open_laws() {
        for seed in [3u64, 11, 2015] {
            let mut spec = serve_scenario(label, arrival.clone());
            spec.seeds = vec![seed];
            let result = spec.execute(&SchedulerKind::Fair, seed, false);

            // The oracle replays the exact stream construction the
            // scenario layer performs: same fork label, same rate scale.
            let mut rng = SimRng::seed_from(seed).fork("serve");
            let mut oracle = OpenStream::new(&stream_spec(label, arrival.clone()), 1.0, &mut rng);
            let mut expected = Vec::new();
            loop {
                let job = oracle.next_job(JobId(expected.len() as u64));
                if job.submit_at() > deadline {
                    break;
                }
                expected.push(job);
            }

            assert_eq!(
                result.jobs.len(),
                expected.len(),
                "{label} seed {seed}: lazy run registered {} jobs, oracle materialized {}",
                result.jobs.len(),
                expected.len()
            );
            for (out, exp) in result.jobs.iter().zip(&expected) {
                assert_eq!(out.id, exp.id(), "{label} seed {seed}");
                assert_eq!(out.submitted_at, exp.submit_at(), "{label} seed {seed}");
                assert_eq!(
                    out.benchmark,
                    exp.benchmark().kind().to_string(),
                    "{label} seed {seed}"
                );
                assert_eq!(out.total_tasks, exp.num_tasks(), "{label} seed {seed}");
            }
        }
    }
}

/// Structural invariants of the emitted [`hadoop_sim::ServiceStats`]: the
/// percentile ladder is monotone, completions never exceed measured
/// arrivals plus the warm-up backlog, and energy attribution is positive.
#[test]
fn service_stats_are_coherent() {
    for (label, arrival) in open_laws() {
        let spec = serve_scenario(label, arrival);
        let result = spec.execute(&SchedulerKind::Fair, 11, false);
        let stats = result.service.as_ref().expect("serve run has stats");
        assert!(stats.arrivals > 0, "{label}: no arrivals in the window");
        assert!(stats.completions > 0, "{label}: nothing completed");
        let (p50, p95, p99) = (
            stats.percentile(50).expect("p50"),
            stats.percentile(95).expect("p95"),
            stats.percentile(99).expect("p99"),
        );
        assert!(
            p50 <= p95 && p95 <= p99,
            "{label}: percentiles not monotone"
        );
        assert!(
            stats.mean_sojourn <= p99,
            "{label}: mean sojourn exceeds p99"
        );
        assert!(stats.energy_joules > 0.0, "{label}: no window energy");
        assert!(stats.energy_per_job > 0.0, "{label}: no per-job energy");
        assert!(
            (stats.warmup_s - WARMUP_S as f64).abs() < 1e-9
                && (stats.measure_s - MEASURE_S as f64).abs() < 1e-9,
            "{label}: window bookkeeping off"
        );
    }
}

/// An offered load beyond cluster capacity never drains: the run ends at
/// the horizon with a growing backlog, and the result says so.
#[test]
fn overloaded_stream_never_drains() {
    let spec = serve_scenario(
        "overload",
        OpenArrival::Bursty {
            bursts_per_min: 3.0,
            burst_min: 5,
            burst_max: 8,
        },
    );
    let result = spec.execute(&SchedulerKind::Fair, 11, false);
    assert!(!result.drained, "overloaded run claims to have drained");
    let stats = result.service.expect("serve run has stats");
    assert!(
        stats.backlog > 10,
        "expected a deep backlog under overload, got {}",
        stats.backlog
    );
    assert!(
        stats.arrivals > stats.completions,
        "overload must outpace completions"
    );
}

/// Drain-mode runs are untouched by the service layer: no `service`
/// section, and the stop condition stays `Drain` through the spec path.
#[test]
fn drain_runs_carry_no_service_stats() {
    use workload::msd::MsdConfig;

    let spec = ScenarioSpec {
        name: "drain".into(),
        description: String::new(),
        seeds: vec![11],
        schedulers: vec![SchedulerKind::Fair],
        workload: WorkloadSpec::Msd(MsdConfig {
            num_jobs: 4,
            task_scale: 32,
            submission_window: SimDuration::from_mins(4),
        }),
        fast_workload: None,
        serve: None,
        slo: None,
        fleet: FleetSpec::Paper,
        engine: EngineConfig::default(),
        tolerance: Tolerance::default(),
    };
    let result = spec.execute(&SchedulerKind::Fair, 11, false);
    assert!(result.drained);
    assert!(result.service.is_none());
    assert!(!run_result_json(&result).contains("\"service\""));
}
